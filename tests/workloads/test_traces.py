"""Power-trace recording, serialization, and replay."""

import numpy as np
import pytest

from repro.telemetry.log import TelemetryLog
from repro.workloads.traces import (
    PowerTrace,
    TracedProgram,
    record_trace,
    traced_workload,
)


def simple_trace():
    return PowerTrace(
        time_s=np.array([0.0, 1.0, 2.0, 3.0]),
        power_w=np.array([50.0, 100.0, 150.0, 100.0]),
        name="t",
    )


class TestPowerTrace:
    def test_duration(self):
        assert simple_trace().duration_s == pytest.approx(3.0)

    def test_rejects_non_increasing_time(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            PowerTrace(np.array([0.0, 0.0, 1.0]), np.array([1.0, 2.0, 3.0]))

    def test_rejects_negative_power(self):
        with pytest.raises(ValueError, match="power_w"):
            PowerTrace(np.array([0.0, 1.0]), np.array([1.0, -2.0]))

    def test_rejects_single_sample(self):
        with pytest.raises(ValueError, match="2 samples"):
            PowerTrace(np.array([0.0]), np.array([1.0]))

    def test_csv_round_trip(self):
        trace = simple_trace()
        restored = PowerTrace.from_csv(trace.to_csv(), name="t")
        np.testing.assert_allclose(restored.time_s, trace.time_s)
        np.testing.assert_allclose(restored.power_w, trace.power_w)

    def test_from_csv_requires_header(self):
        with pytest.raises(ValueError, match="header"):
            PowerTrace.from_csv("0,50\n1,60\n")

    def test_from_csv_rejects_bad_row(self):
        with pytest.raises(ValueError, match="line 3"):
            PowerTrace.from_csv("time_s,power_w\n0,50\n1\n")


class TestTracedProgram:
    def test_interpolates(self):
        prog = TracedProgram(simple_trace())
        assert prog.demand_at(0.5) == pytest.approx(75.0)
        assert prog.demand_at(1.0) == pytest.approx(100.0)

    def test_clamps_at_ends(self):
        prog = TracedProgram(simple_trace())
        assert prog.demand_at(-1.0) == pytest.approx(50.0)
        assert prog.demand_at(99.0) == pytest.approx(100.0)

    def test_sample_and_fraction(self):
        prog = TracedProgram(simple_trace())
        trace = prog.sample(1.0)
        assert trace.shape == (3,)
        assert 0.0 <= prog.fraction_above(110.0) <= 1.0

    def test_scaled(self):
        prog = TracedProgram(simple_trace()).scaled(2.0)
        assert prog.duration_s == pytest.approx(6.0)
        assert prog.demand_at(1.0) == pytest.approx(75.0)

    def test_scaled_rejects_bad_factor(self):
        with pytest.raises(ValueError, match="factor"):
            TracedProgram(simple_trace()).scaled(0.0)

    def test_nonzero_start_time(self):
        trace = PowerTrace(
            np.array([10.0, 11.0, 12.0]), np.array([50.0, 100.0, 50.0])
        )
        prog = TracedProgram(trace)
        assert prog.duration_s == pytest.approx(2.0)
        assert prog.demand_at(1.0) == pytest.approx(100.0)


class TestRecordTrace:
    def make_log(self):
        log = TelemetryLog(2)
        for t in range(5):
            log.record(
                float(t + 1),
                np.array([50.0 + t, 80.0]),
                np.array([50.0 + t, 80.0]),
                np.array([110.0, 110.0]),
            )
        return log

    def test_records_unit_series(self):
        trace = record_trace(self.make_log(), 0, name="x")
        assert trace.name == "x"
        np.testing.assert_allclose(trace.power_w, [50, 51, 52, 53, 54])

    def test_rejects_bad_unit(self):
        with pytest.raises(ValueError, match="unit_id"):
            record_trace(self.make_log(), 5)

    def test_rejects_short_log(self):
        log = TelemetryLog(1)
        log.record(1.0, np.array([1.0]), np.array([1.0]), np.array([1.0]))
        with pytest.raises(ValueError, match="fewer than 2"):
            record_trace(log, 0)


class TestTracedWorkload:
    def test_runs_through_simulator(self):
        """A traced workload is a drop-in replacement in the engine."""
        from repro.cluster.cluster import Cluster
        from repro.cluster.simulator import Assignment, Simulation
        from repro.core.config import ClusterSpec, SimulationConfig
        from repro.core.managers import create_manager

        t = np.arange(30, dtype=float)
        trace = PowerTrace(t, 80.0 + 60.0 * (t % 10 < 4), name="replayed")
        spec = traced_workload(trace)
        cluster_spec = ClusterSpec(n_nodes=2, sockets_per_node=2)
        cluster = Cluster(cluster_spec)
        sim = Simulation(
            cluster_spec=cluster_spec,
            manager=create_manager("dps"),
            assignments=[
                Assignment(spec=spec, unit_ids=cluster.half_unit_ids(0))
            ],
            target_runs=1,
            sim_config=SimulationConfig(max_steps=2000, inter_run_gap_s=0.0),
            seed=4,
        )
        result = sim.run()
        assert not result.truncated
        assert result.durations["replayed"] > 0

"""bind_listener: ephemeral ports, plumbed addresses, bounded retry."""

import socket
import threading

import pytest

from repro.comm.net import bind_listener


class TestEphemeralPorts:
    def test_port_zero_picks_free_port(self):
        sock = bind_listener("127.0.0.1", 0)
        try:
            host, port = sock.getsockname()
            assert host == "127.0.0.1"
            assert port != 0
        finally:
            sock.close()

    def test_two_listeners_never_collide(self):
        a = bind_listener("127.0.0.1", 0)
        b = bind_listener("127.0.0.1", 0)
        try:
            assert a.getsockname()[1] != b.getsockname()[1]
        finally:
            a.close()
            b.close()

    def test_timeout_applied_after_listen(self):
        sock = bind_listener("127.0.0.1", 0, timeout_s=0.25)
        try:
            assert sock.gettimeout() == 0.25
        finally:
            sock.close()

    def test_listener_accepts_connections(self):
        sock = bind_listener("127.0.0.1", 0, timeout_s=1.0)
        try:
            port = sock.getsockname()[1]
            with socket.create_connection(("127.0.0.1", port), timeout=1.0):
                conn, _ = sock.accept()
                conn.close()
        finally:
            sock.close()


class TestBoundedRetry:
    def test_rejects_negative_retries(self):
        with pytest.raises(ValueError, match="retries"):
            bind_listener("127.0.0.1", 0, retries=-1)

    def test_busy_pinned_port_exhausts_retries(self):
        holder = bind_listener("127.0.0.1", 0)
        try:
            port = holder.getsockname()[1]
            with pytest.raises(OSError):
                bind_listener(
                    "127.0.0.1", port, retries=2, delay_s=0.01
                )
        finally:
            holder.close()

    def test_retry_succeeds_once_port_frees(self):
        holder = bind_listener("127.0.0.1", 0)
        port = holder.getsockname()[1]
        timer = threading.Timer(0.15, holder.close)
        timer.start()
        try:
            sock = bind_listener(
                "127.0.0.1", port, retries=20, delay_s=0.05
            )
            assert sock.getsockname()[1] == port
            sock.close()
        finally:
            timer.cancel()
            holder.close()

"""3-byte wire protocol (paper §6.5)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.comm.protocol import (
    MESSAGE_SIZE_BYTES,
    MSG_CAP,
    MSG_READING,
    decode,
    encode,
    quantize_w,
)


class TestEncoding:
    def test_exactly_three_bytes(self):
        assert len(encode(MSG_READING, 0, 0.0)) == MESSAGE_SIZE_BYTES
        assert len(encode(MSG_CAP, 1023, 409.5)) == MESSAGE_SIZE_BYTES

    def test_round_trip(self):
        msg = decode(encode(MSG_READING, 7, 123.4))
        assert msg.kind == MSG_READING
        assert msg.unit == 7
        assert msg.value_w == pytest.approx(123.4)

    def test_quantized_to_tenth_watt(self):
        msg = decode(encode(MSG_CAP, 0, 110.04))
        assert msg.value_w == pytest.approx(110.0)
        msg = decode(encode(MSG_CAP, 0, 110.06))
        assert msg.value_w == pytest.approx(110.1)

    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="kind"):
            encode(3, 0, 1.0)

    def test_rejects_unit_out_of_range(self):
        with pytest.raises(ValueError, match="unit"):
            encode(MSG_READING, 1024, 1.0)
        with pytest.raises(ValueError, match="unit"):
            encode(MSG_READING, -1, 1.0)

    def test_rejects_value_out_of_range(self):
        with pytest.raises(ValueError, match="value_w"):
            encode(MSG_READING, 0, 410.0)
        with pytest.raises(ValueError, match="value_w"):
            encode(MSG_READING, 0, -0.1)


class TestHalfUpBoundaries:
    """Ties at the 0.05 W midpoint round *up*, never to-even.

    Built-in ``round`` would send 0.25 W and 0.35 W to the same wire
    value (0.2 and 0.4 — round-to-even) while 0.15 W goes up; explicit
    half-up keeps every boundary direction-stable.
    """

    @pytest.mark.parametrize(
        ("value", "expected"),
        [
            (0.05, 0.1),
            (0.15, 0.2),
            (0.25, 0.3),  # round() would give 0.2.
            (0.35, 0.4),
            (0.45, 0.5),  # round() would give 0.4.
            (102.25, 102.3),
            (409.45, 409.5),
        ],
    )
    def test_midpoints_round_up(self, value, expected):
        msg = decode(encode(MSG_CAP, 0, value))
        assert msg.value_w == pytest.approx(expected)
        assert quantize_w(value) == pytest.approx(expected)

    def test_quantize_matches_wire(self):
        for decis in range(0, 4096):
            value = decis / 10.0 + 0.05
            if value > 409.5:
                break
            assert decode(encode(MSG_CAP, 0, value)).value_w == pytest.approx(
                quantize_w(value)
            )

    @given(st.floats(0.0, 409.4))
    @settings(max_examples=200, deadline=None)
    def test_quantization_is_monotone(self, value):
        lo = decode(encode(MSG_READING, 0, value)).value_w
        hi = decode(encode(MSG_READING, 0, value + 0.1)).value_w
        assert hi >= lo


class TestDecoding:
    def test_rejects_wrong_length(self):
        with pytest.raises(ValueError, match="3 bytes"):
            decode(b"\x00\x00")

    def test_rejects_corrupt_kind(self):
        # Set the top kind bits to 3 (invalid).
        with pytest.raises(ValueError, match="corrupt"):
            decode(b"\xc0\x00\x00")


class TestProperties:
    @given(
        st.sampled_from([MSG_READING, MSG_CAP]),
        st.integers(0, 1023),
        st.integers(0, 4095),
    )
    @settings(max_examples=100, deadline=None)
    def test_round_trip_exact_on_grid(self, kind, unit, decis):
        value = decis / 10.0
        msg = decode(encode(kind, unit, value))
        assert msg == (kind, unit, pytest.approx(value))

    @given(st.floats(0.0, 409.5))
    @settings(max_examples=100, deadline=None)
    def test_quantization_error_bounded(self, value):
        msg = decode(encode(MSG_READING, 0, value))
        assert abs(msg.value_w - value) <= 0.05 + 1e-9

"""3-byte wire protocol (paper §6.5)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.comm.protocol import (
    MESSAGE_SIZE_BYTES,
    MSG_CAP,
    MSG_READING,
    decode,
    encode,
)


class TestEncoding:
    def test_exactly_three_bytes(self):
        assert len(encode(MSG_READING, 0, 0.0)) == MESSAGE_SIZE_BYTES
        assert len(encode(MSG_CAP, 1023, 409.5)) == MESSAGE_SIZE_BYTES

    def test_round_trip(self):
        msg = decode(encode(MSG_READING, 7, 123.4))
        assert msg.kind == MSG_READING
        assert msg.unit == 7
        assert msg.value_w == pytest.approx(123.4)

    def test_quantized_to_tenth_watt(self):
        msg = decode(encode(MSG_CAP, 0, 110.04))
        assert msg.value_w == pytest.approx(110.0)
        msg = decode(encode(MSG_CAP, 0, 110.06))
        assert msg.value_w == pytest.approx(110.1)

    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="kind"):
            encode(3, 0, 1.0)

    def test_rejects_unit_out_of_range(self):
        with pytest.raises(ValueError, match="unit"):
            encode(MSG_READING, 1024, 1.0)
        with pytest.raises(ValueError, match="unit"):
            encode(MSG_READING, -1, 1.0)

    def test_rejects_value_out_of_range(self):
        with pytest.raises(ValueError, match="value_w"):
            encode(MSG_READING, 0, 410.0)
        with pytest.raises(ValueError, match="value_w"):
            encode(MSG_READING, 0, -0.1)


class TestDecoding:
    def test_rejects_wrong_length(self):
        with pytest.raises(ValueError, match="3 bytes"):
            decode(b"\x00\x00")

    def test_rejects_corrupt_kind(self):
        # Set the top kind bits to 3 (invalid).
        with pytest.raises(ValueError, match="corrupt"):
            decode(b"\xc0\x00\x00")


class TestProperties:
    @given(
        st.sampled_from([MSG_READING, MSG_CAP]),
        st.integers(0, 1023),
        st.integers(0, 4095),
    )
    @settings(max_examples=100, deadline=None)
    def test_round_trip_exact_on_grid(self, kind, unit, decis):
        value = decis / 10.0
        msg = decode(encode(kind, unit, value))
        assert msg == (kind, unit, pytest.approx(value))

    @given(st.floats(0.0, 409.5))
    @settings(max_examples=100, deadline=None)
    def test_quantization_error_bounded(self, value):
        msg = decode(encode(MSG_READING, 0, value))
        assert abs(msg.value_w - value) <= 0.05 + 1e-9

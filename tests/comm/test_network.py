"""Network latency/traffic model (§6.5)."""

import pytest

from repro.comm.network import NetworkModel


class TestTransfer:
    def test_serialized_latency_components(self):
        net = NetworkModel(
            base_latency_s=1e-4,
            server_per_message_s=2e-6,
            bandwidth_bytes_per_s=1e6,
        )
        latency = net.transfer(1000)
        assert latency == pytest.approx(2e-6 + 1e-3)

    def test_propagation_separate(self):
        net = NetworkModel(base_latency_s=1e-4)
        assert net.propagation_s() == pytest.approx(1e-4)

    def test_rejects_negative_per_message(self):
        with pytest.raises(ValueError, match="server_per_message_s"):
            NetworkModel(server_per_message_s=-1.0)

    def test_stats_accumulate(self):
        net = NetworkModel()
        net.transfer(3)
        net.transfer(3)
        assert net.stats.messages == 2
        assert net.stats.bytes == 6
        assert net.stats.busy_s > 0

    def test_reset(self):
        net = NetworkModel()
        net.transfer(3)
        net.reset_stats()
        assert net.stats.messages == 0

    def test_rejects_negative_bytes(self):
        with pytest.raises(ValueError, match="n_bytes"):
            NetworkModel().transfer(-1)

    def test_rejects_bad_config(self):
        with pytest.raises(ValueError, match="base_latency_s"):
            NetworkModel(base_latency_s=-1.0)
        with pytest.raises(ValueError, match="bandwidth"):
            NetworkModel(bandwidth_bytes_per_s=0.0)

    def test_paper_scaling_claim(self):
        """§6.5: 1M nodes' worth of 3-byte requests is ~3 MB — trivially
        within a GB/s link's capacity per 1 s decision loop."""
        net = NetworkModel()
        total_bytes = 1_000_000 * 3
        assert total_bytes / net.bandwidth_bytes_per_s < 0.01

"""Length-prefixed JSON/binary framing for the distributed planes."""

import json
import math
import socket

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.comm.protocol import quantize_w
from repro.comm.wire import (
    BINARY_TAG,
    MAX_FRAME_BYTES,
    ArrayCache,
    FrameAssembler,
    FrameError,
    encode_frame,
    recv_doc,
    send_doc,
)


class TestFrameCodec:
    def test_socket_round_trip(self):
        a, b = socket.socketpair()
        with a, b:
            send_doc(a, {"type": "job", "tokens": ["reference", "kmeans"]})
            assert recv_doc(b) == {
                "type": "job",
                "tokens": ["reference", "kmeans"],
            }

    def test_clean_eof_at_boundary_is_none(self):
        a, b = socket.socketpair()
        with b:
            a.close()
            assert recv_doc(b) is None

    def test_eof_mid_frame_raises(self):
        a, b = socket.socketpair()
        with b:
            frame = encode_frame({"k": "v" * 100})
            a.sendall(frame[: len(frame) // 2])
            a.close()
            with pytest.raises(ConnectionError, match="outstanding"):
                recv_doc(b)

    def test_oversized_declared_length_rejected(self):
        a, b = socket.socketpair()
        with a, b:
            a.sendall((MAX_FRAME_BYTES + 1).to_bytes(4, "big"))
            with pytest.raises(FrameError, match="exceeds"):
                recv_doc(b)

    def test_oversized_body_rejected_at_encode(self):
        with pytest.raises(FrameError, match="exceeds"):
            encode_frame({"blob": "x" * (MAX_FRAME_BYTES + 1)})

    def test_non_object_body_rejected(self):
        a, b = socket.socketpair()
        with a, b:
            body = b"[1, 2, 3]"
            a.sendall(len(body).to_bytes(4, "big") + body)
            with pytest.raises(FrameError, match="JSON object"):
                recv_doc(b)

    def test_non_json_body_rejected(self):
        a, b = socket.socketpair()
        with a, b:
            body = b"\xff\xfe not json"
            a.sendall(len(body).to_bytes(4, "big") + body)
            with pytest.raises(FrameError, match="not valid JSON"):
                recv_doc(b)


class TestFrameAssembler:
    def test_byte_by_byte_reassembly(self):
        frame = encode_frame({"type": "heartbeat", "digest": "d" * 64})
        assembler = FrameAssembler()
        docs = []
        for i in range(len(frame)):
            docs.extend(assembler.feed(frame[i : i + 1]))
        assert docs == [{"type": "heartbeat", "digest": "d" * 64}]
        assert assembler.pending_bytes == 0

    def test_multiple_frames_in_one_fragment(self):
        blob = encode_frame({"n": 1}) + encode_frame({"n": 2}) + encode_frame(
            {"n": 3}
        )
        assert FrameAssembler().feed(blob) == [{"n": 1}, {"n": 2}, {"n": 3}]

    def test_partial_frame_is_buffered(self):
        frame = encode_frame({"k": "v"})
        assembler = FrameAssembler()
        assert assembler.feed(frame[:-1]) == []
        assert assembler.pending_bytes == len(frame) - 1
        assert assembler.feed(frame[-1:]) == [{"k": "v"}]

    def test_frames_straddling_fragments(self):
        blob = encode_frame({"n": 1}) + encode_frame({"n": 2})
        assembler = FrameAssembler()
        cut = len(encode_frame({"n": 1})) + 2
        docs = assembler.feed(blob[:cut])
        docs.extend(assembler.feed(blob[cut:]))
        assert docs == [{"n": 1}, {"n": 2}]

    def test_oversized_length_prefix_rejected(self):
        assembler = FrameAssembler()
        with pytest.raises(FrameError, match="exceeds"):
            assembler.feed((MAX_FRAME_BYTES + 1).to_bytes(4, "big"))

    def test_reset_discards_torn_binary_frame_across_reconnect(self):
        """The reconnect reset applies to binary frames identically."""
        torn = encode_frame({"type": "cycle", "demand": np.arange(64.0)})
        assembler = FrameAssembler()
        assert assembler.feed(torn[: len(torn) // 2]) == []
        assembler.reset()
        docs = assembler.feed(encode_frame({"type": "hello", "shard": "s0"}))
        assert docs == [{"type": "hello", "shard": "s0"}]

    def test_reset_discards_torn_frame_across_reconnect(self):
        """A frame torn by a dead connection must not prefix the next.

        Without the reset, the first frame of the new session would be
        parsed as the tail of the torn one — a silent corruption a
        reconnecting :class:`~repro.comm.shardlink.TcpShardLink` cannot
        detect.
        """
        torn = encode_frame({"type": "summary", "seq": 7})
        assembler = FrameAssembler()
        assert assembler.feed(torn[: len(torn) // 2]) == []
        assert assembler.pending_bytes > 0
        assembler.reset()
        assert assembler.pending_bytes == 0
        fresh = encode_frame({"type": "hello", "role": "arbiter"})
        assert assembler.feed(fresh) == [
            {"type": "hello", "role": "arbiter"}
        ]


def _round_trip(doc, quantized=()):
    docs = FrameAssembler().feed(encode_frame(doc, quantized=quantized))
    assert len(docs) == 1
    return docs[0]


class TestBinaryFrames:
    """The binary array frame type riding the same length-prefixed stream."""

    def test_arrays_come_back_as_ndarrays_scalars_untouched(self):
        doc = {
            "type": "cycle",
            "step": 41,
            "demand": np.linspace(0.0, 250.0, 17),
        }
        out = _round_trip(doc)
        assert out["type"] == "cycle" and out["step"] == 41
        assert isinstance(out["demand"], np.ndarray)
        assert out["demand"].dtype == np.float64
        np.testing.assert_array_equal(out["demand"], doc["demand"])

    def test_json_frames_are_byte_identical_to_plain_json(self):
        """No-array documents must keep the exact pre-binary wire bytes."""
        doc = {"type": "hello", "role": "clock", "shard": "s3"}
        body = encode_frame(doc)[4:]
        assert body == json.dumps(doc, separators=(",", ":")).encode("utf-8")
        assert body[:1] != bytes([BINARY_TAG])

    def test_nan_and_signed_zero_pass_through_f64(self):
        demand = np.array([math.nan, -0.0, 0.0, math.inf, -math.inf, 180.25])
        out = _round_trip({"type": "cycle_ack", "power": demand})["power"]
        # Bit-level equality: NaN payloads and zero signs both survive.
        assert out.tobytes() == demand.tobytes()

    def test_quantized_key_packs_u16_when_on_lattice(self):
        caps = np.array([0.0, 0.1, 180.3, 409.5])
        frame = encode_frame({"type": "grant", "caps": caps}, quantized=("caps",))
        header_len = int.from_bytes(frame[5:9], "big")
        header = json.loads(frame[9 : 9 + header_len])
        assert header["arrays"] == [["caps", "w2", 4]]
        out = _round_trip({"type": "grant", "caps": caps}, quantized=("caps",))
        np.testing.assert_array_equal(out["caps"], caps)

    @pytest.mark.parametrize(
        "caps",
        [
            np.array([0.123]),  # off the 0.1 W lattice
            np.array([409.6]),  # above the 12-bit cap ceiling
            np.array([-1.0]),  # negative
            np.array([math.nan]),  # non-finite
        ],
        ids=["off-lattice", "over-ceiling", "negative", "nan"],
    )
    def test_quantized_key_falls_back_to_f64_rather_than_move_values(self, caps):
        frame = encode_frame({"caps": caps}, quantized=("caps",))
        header_len = int.from_bytes(frame[5:9], "big")
        header = json.loads(frame[9 : 9 + header_len])
        assert header["arrays"] == [["caps", "f8", 1]]
        out = _round_trip({"caps": caps}, quantized=("caps",))
        assert out["caps"].tobytes() == caps.tobytes()

    def test_empty_array_round_trips(self):
        out = _round_trip({"power": np.array([], dtype=np.float64)})
        assert isinstance(out["power"], np.ndarray)
        assert out["power"].size == 0

    def test_2d_array_rejected(self):
        with pytest.raises(FrameError, match="1-D"):
            encode_frame({"m": np.zeros((2, 2))})

    def test_socket_round_trip_binary(self):
        a, b = socket.socketpair()
        with a, b:
            demand = np.linspace(0.0, 300.0, 101)
            send_doc(a, {"type": "cycle", "step": 3, "demand": demand})
            out = recv_doc(b)
            assert out["step"] == 3
            np.testing.assert_array_equal(out["demand"], demand)

    def test_truncated_binary_body_rejected(self):
        frame = encode_frame({"demand": np.arange(8.0)})
        body = frame[4:-8]  # drop one f64 from the payload
        blob = len(body).to_bytes(4, "big") + body
        with pytest.raises(FrameError, match="overruns"):
            FrameAssembler().feed(blob)

    def test_trailing_garbage_rejected(self):
        body = encode_frame({"demand": np.arange(8.0)})[4:] + b"\x00" * 4
        blob = len(body).to_bytes(4, "big") + body
        with pytest.raises(FrameError, match="trailing"):
            FrameAssembler().feed(blob)

    def test_unknown_array_code_rejected(self):
        header = json.dumps(
            {"doc": {}, "arrays": [["x", "q9", 0]]}, separators=(",", ":")
        ).encode()
        body = bytes([BINARY_TAG]) + len(header).to_bytes(4, "big") + header
        blob = len(body).to_bytes(4, "big") + body
        with pytest.raises(FrameError, match="unknown binary array code"):
            FrameAssembler().feed(blob)


# Finite f64s plus the awkward citizens: NaN, signed zeros, infinities,
# subnormals — everything a power/demand vector could legally carry.
_f64s = st.floats(width=64, allow_nan=True, allow_infinity=True)
_vectors = st.lists(_f64s, max_size=64).map(
    lambda xs: np.array(xs, dtype=np.float64)
)
# Deci-watt lattice points within the 12-bit cap range [0, 409.5] W.
_lattice_caps = st.lists(
    st.integers(min_value=0, max_value=4095), max_size=64
).map(lambda decis: np.array(decis, dtype=np.float64) / 10.0)
_cap_floats = st.lists(
    st.floats(min_value=0.0, max_value=409.5, allow_nan=False), max_size=64
).map(lambda xs: np.array(xs, dtype=np.float64))


class TestBinaryRoundTripProperties:
    @given(power=_vectors, demand=_vectors)
    @settings(max_examples=100, deadline=None)
    def test_f64_arrays_bit_exact(self, power, demand):
        doc = {"type": "cycle_ack", "step": 0, "power": power, "demand": demand}
        out = _round_trip(doc)
        assert out["power"].tobytes() == power.tobytes()
        assert out["demand"].tobytes() == demand.tobytes()

    @given(caps=_lattice_caps)
    @settings(max_examples=100, deadline=None)
    def test_u16_caps_bit_exact_on_lattice(self, caps):
        out = _round_trip({"caps": caps}, quantized=("caps",))["caps"]
        assert out.tobytes() == caps.tobytes()

    @given(caps=_cap_floats)
    @settings(max_examples=100, deadline=None)
    def test_quantized_decode_matches_protocol_quantize_w(self, caps):
        """Whatever the codec does, the decoded value is either the input
        itself (f8 fallback) or ``quantize_w`` of it (u16) — never a third
        value off both lattices."""
        out = _round_trip({"caps": caps}, quantized=("caps",))["caps"]
        for sent, got in zip(caps, out):
            assert got == sent or got == quantize_w(sent)

    @given(
        docs=st.lists(
            st.one_of(
                st.fixed_dictionaries(
                    {"type": st.just("hello"), "shard": st.text(max_size=8)}
                ),
                st.fixed_dictionaries(
                    {"type": st.just("cycle"), "demand": _vectors}
                ),
            ),
            min_size=1,
            max_size=8,
        ),
        data=st.data(),
    )
    @settings(max_examples=60, deadline=None)
    def test_assembler_survives_torn_interleaved_frames(self, docs, data):
        """Binary and JSON frames interleaved, delivered in arbitrary
        fragmentation, reassemble to exactly the sent sequence."""
        blob = b"".join(encode_frame(d) for d in docs)
        cuts = sorted(
            data.draw(
                st.lists(
                    st.integers(min_value=0, max_value=len(blob)), max_size=12
                )
            )
        )
        assembler = FrameAssembler()
        out = []
        start = 0
        for cut in cuts + [len(blob)]:
            out.extend(assembler.feed(blob[start:cut]))
            start = cut
        assert assembler.pending_bytes == 0
        assert len(out) == len(docs)
        for sent, got in zip(docs, out):
            assert sent.keys() == got.keys()
            for key, value in sent.items():
                if isinstance(value, np.ndarray):
                    assert got[key].tobytes() == value.tobytes()
                else:
                    assert got[key] == value


def _header_codes(frame):
    header_len = int.from_bytes(frame[5:9], "big")
    header = json.loads(frame[9 : 9 + header_len])
    return [(key, code) for key, code, _ in header["arrays"]]


class TestFillAndRepeatCodes:
    """Uniform arrays collapse to fills; unchanged arrays to repeats."""

    def test_uniform_f64_ships_as_fill(self):
        power = np.full(4096, 3.86615468)
        frame = encode_frame({"type": "cycle_ack", "power": power})
        assert _header_codes(frame) == [("power", "F8")]
        assert len(frame) < 100
        out = FrameAssembler().feed(frame)[0]["power"]
        assert out.tobytes() == power.tobytes()

    def test_uniform_nan_fill_is_bit_exact(self):
        down = np.full(16, np.nan)
        out = _round_trip({"power": down})["power"]
        assert out.tobytes() == down.tobytes()

    def test_uniform_lattice_caps_ship_as_w16_fill(self):
        caps = np.full(4096, 164.9)
        frame = encode_frame({"caps": caps}, quantized=("caps",))
        assert _header_codes(frame) == [("caps", "W2")]
        out = _round_trip({"caps": caps}, quantized=("caps",))
        np.testing.assert_array_equal(out["caps"], caps)

    def test_single_element_array_is_not_filled(self):
        frame = encode_frame({"power": np.array([1.5])})
        assert _header_codes(frame) == [("power", "f8")]

    def test_repeat_elides_unchanged_arrays_per_connection(self):
        send = ArrayCache()
        asm = FrameAssembler(cache=ArrayCache())
        demand = np.random.default_rng(3).uniform(0.0, 1.0, 512)
        first = encode_frame({"type": "cycle", "demand": demand}, cache=send)
        again = encode_frame({"type": "cycle", "demand": demand}, cache=send)
        assert _header_codes(first) == [("demand", "f8")]
        assert _header_codes(again) == [("demand", "==")]
        assert len(again) < 100 < len(first)
        out1 = asm.feed(first)[0]["demand"]
        out2 = asm.feed(again)[0]["demand"]
        assert out1.tobytes() == demand.tobytes()
        assert out2.tobytes() == demand.tobytes()

    def test_changed_array_ships_full_then_repeats_the_new_value(self):
        send = ArrayCache()
        a = np.random.default_rng(4).uniform(0.0, 1.0, 64)
        b = a + 1.0
        encode_frame({"demand": a}, cache=send)
        changed = encode_frame({"demand": b}, cache=send)
        repeated = encode_frame({"demand": b}, cache=send)
        assert _header_codes(changed) == [("demand", "f8")]
        assert _header_codes(repeated) == [("demand", "==")]

    def test_repeat_without_receive_cache_rejected(self):
        send = ArrayCache()
        demand = np.random.default_rng(5).uniform(0.0, 1.0, 32)
        encode_frame({"demand": demand}, cache=send)
        again = encode_frame({"demand": demand}, cache=send)
        with pytest.raises(FrameError, match="nothing cached"):
            FrameAssembler().feed(again)

    def test_reset_drops_the_repeat_memo_with_the_stream(self):
        """A reconnect must never satisfy repeats from the old stream."""
        send = ArrayCache()
        asm = FrameAssembler(cache=ArrayCache())
        demand = np.random.default_rng(6).uniform(0.0, 1.0, 32)
        asm.feed(encode_frame({"demand": demand}, cache=send))
        again = encode_frame({"demand": demand}, cache=send)
        asm.reset()
        with pytest.raises(FrameError, match="nothing cached"):
            asm.feed(again)

    @given(
        vectors=st.lists(
            st.one_of(
                st.lists(_f64s, min_size=1, max_size=16).map(
                    lambda xs: np.array(xs, dtype=np.float64)
                ),
                st.floats(width=64, allow_nan=True, allow_infinity=True).map(
                    lambda x: np.full(9, x)
                ),
            ),
            min_size=1,
            max_size=12,
        ),
        repeats=st.lists(st.booleans(), min_size=12, max_size=12),
    )
    @settings(max_examples=60, deadline=None)
    def test_cached_stream_always_bit_exact(self, vectors, repeats):
        """Any send sequence through one cached pair round-trips exactly.

        Arrays are drawn from full-entropy and uniform shapes, and each
        one is optionally sent twice in a row (exercising the repeat
        path) — every decode must reproduce the sender's bytes.
        """
        send = ArrayCache()
        asm = FrameAssembler(cache=ArrayCache())
        for value, twice in zip(vectors, repeats):
            sends = 2 if twice else 1
            for _ in range(sends):
                frame = encode_frame(
                    {"type": "cycle", "demand": value}, cache=send
                )
                out = asm.feed(frame)[0]["demand"]
                assert out.tobytes() == value.tobytes()

"""Length-prefixed JSON framing for the distributed experiment plane."""

import socket

import pytest

from repro.comm.wire import (
    MAX_FRAME_BYTES,
    FrameAssembler,
    FrameError,
    encode_frame,
    recv_doc,
    send_doc,
)


class TestFrameCodec:
    def test_socket_round_trip(self):
        a, b = socket.socketpair()
        with a, b:
            send_doc(a, {"type": "job", "tokens": ["reference", "kmeans"]})
            assert recv_doc(b) == {
                "type": "job",
                "tokens": ["reference", "kmeans"],
            }

    def test_clean_eof_at_boundary_is_none(self):
        a, b = socket.socketpair()
        with b:
            a.close()
            assert recv_doc(b) is None

    def test_eof_mid_frame_raises(self):
        a, b = socket.socketpair()
        with b:
            frame = encode_frame({"k": "v" * 100})
            a.sendall(frame[: len(frame) // 2])
            a.close()
            with pytest.raises(ConnectionError, match="outstanding"):
                recv_doc(b)

    def test_oversized_declared_length_rejected(self):
        a, b = socket.socketpair()
        with a, b:
            a.sendall((MAX_FRAME_BYTES + 1).to_bytes(4, "big"))
            with pytest.raises(FrameError, match="exceeds"):
                recv_doc(b)

    def test_oversized_body_rejected_at_encode(self):
        with pytest.raises(FrameError, match="exceeds"):
            encode_frame({"blob": "x" * (MAX_FRAME_BYTES + 1)})

    def test_non_object_body_rejected(self):
        a, b = socket.socketpair()
        with a, b:
            body = b"[1, 2, 3]"
            a.sendall(len(body).to_bytes(4, "big") + body)
            with pytest.raises(FrameError, match="JSON object"):
                recv_doc(b)

    def test_non_json_body_rejected(self):
        a, b = socket.socketpair()
        with a, b:
            body = b"\xff\xfe not json"
            a.sendall(len(body).to_bytes(4, "big") + body)
            with pytest.raises(FrameError, match="not valid JSON"):
                recv_doc(b)


class TestFrameAssembler:
    def test_byte_by_byte_reassembly(self):
        frame = encode_frame({"type": "heartbeat", "digest": "d" * 64})
        assembler = FrameAssembler()
        docs = []
        for i in range(len(frame)):
            docs.extend(assembler.feed(frame[i : i + 1]))
        assert docs == [{"type": "heartbeat", "digest": "d" * 64}]
        assert assembler.pending_bytes == 0

    def test_multiple_frames_in_one_fragment(self):
        blob = encode_frame({"n": 1}) + encode_frame({"n": 2}) + encode_frame(
            {"n": 3}
        )
        assert FrameAssembler().feed(blob) == [{"n": 1}, {"n": 2}, {"n": 3}]

    def test_partial_frame_is_buffered(self):
        frame = encode_frame({"k": "v"})
        assembler = FrameAssembler()
        assert assembler.feed(frame[:-1]) == []
        assert assembler.pending_bytes == len(frame) - 1
        assert assembler.feed(frame[-1:]) == [{"k": "v"}]

    def test_frames_straddling_fragments(self):
        blob = encode_frame({"n": 1}) + encode_frame({"n": 2})
        assembler = FrameAssembler()
        cut = len(encode_frame({"n": 1})) + 2
        docs = assembler.feed(blob[:cut])
        docs.extend(assembler.feed(blob[cut:]))
        assert docs == [{"n": 1}, {"n": 2}]

    def test_oversized_length_prefix_rejected(self):
        assembler = FrameAssembler()
        with pytest.raises(FrameError, match="exceeds"):
            assembler.feed((MAX_FRAME_BYTES + 1).to_bytes(4, "big"))

    def test_reset_discards_torn_frame_across_reconnect(self):
        """A frame torn by a dead connection must not prefix the next.

        Without the reset, the first frame of the new session would be
        parsed as the tail of the torn one — a silent corruption a
        reconnecting :class:`~repro.comm.shardlink.TcpShardLink` cannot
        detect.
        """
        torn = encode_frame({"type": "summary", "seq": 7})
        assembler = FrameAssembler()
        assert assembler.feed(torn[: len(torn) // 2]) == []
        assert assembler.pending_bytes > 0
        assembler.reset()
        assert assembler.pending_bytes == 0
        fresh = encode_frame({"type": "hello", "role": "arbiter"})
        assert assembler.feed(fresh) == [
            {"type": "hello", "role": "arbiter"}
        ]

"""Server/client control cycle over the simulated network."""

import numpy as np
import pytest

from repro.cluster.cluster import Cluster
from repro.comm.network import NetworkModel
from repro.comm.protocol import MSG_READING, encode
from repro.comm.service import PowerClient, PowerServer
from repro.core.config import ClusterSpec, RaplConfig
from repro.core.managers import create_manager


def make_service(n_nodes=2, manager_name="slurm", noise=0.0):
    spec = ClusterSpec(n_nodes=n_nodes, sockets_per_node=2)
    cluster = Cluster(spec, RaplConfig(noise_std_w=noise),
                      np.random.default_rng(0))
    manager = create_manager(manager_name)
    manager.bind(
        spec.n_units, spec.budget_w, spec.tdp_w, spec.min_cap_w,
        rng=np.random.default_rng(1),
    )
    network = NetworkModel()
    clients = [PowerClient(n) for n in cluster.nodes]
    return cluster, PowerServer(manager, clients, network), network


class TestCycle:
    def test_three_bytes_per_unit_each_way(self):
        cluster, server, net = make_service()
        cluster.step_physics(np.full(4, 100.0), 1.0)
        report = server.control_cycle(1.0)
        assert report.bytes_up == 4 * 3
        assert report.bytes_down == 4 * 3
        assert net.stats.bytes == 24

    def test_caps_programmed_on_domains(self):
        cluster, server, _ = make_service()
        for _ in range(15):
            cluster.step_physics(np.array([30.0, 30.0, 150.0, 150.0]), 1.0)
            server.control_cycle(1.0)
        caps = cluster.caps_w()
        assert caps[0] < 60.0   # Idle sockets chased down...
        assert caps[2] > 120.0  # ...hungry sockets grown.

    def test_turnaround_includes_compute(self):
        cluster, server, _ = make_service()
        cluster.step_physics(np.full(4, 100.0), 1.0)
        report = server.control_cycle(1.0)
        assert report.turnaround_s == pytest.approx(
            report.network_s + report.compute_s
        )
        assert report.compute_s > 0

    def test_dps_manager_works_over_service(self):
        cluster, server, _ = make_service(manager_name="dps")
        for _ in range(10):
            cluster.step_physics(np.full(4, 120.0), 1.0)
            report = server.control_cycle(1.0)
        assert report.bytes_up == 12


class TestClient:
    def test_apply_rejects_reading_kind(self):
        cluster, _, _ = make_service()
        client = PowerClient(cluster.nodes[0])
        with pytest.raises(ValueError, match="non-cap"):
            client.apply([encode(MSG_READING, 0, 100.0)])

    def test_apply_rejects_unknown_unit(self):
        from repro.comm.protocol import MSG_CAP

        cluster, _, _ = make_service()
        client = PowerClient(cluster.nodes[0])
        with pytest.raises(ValueError, match="unknown local unit"):
            client.apply([encode(MSG_CAP, 9, 100.0)])


class TestServerValidation:
    def test_rejects_unit_mismatch(self):
        spec = ClusterSpec(n_nodes=2, sockets_per_node=2)
        cluster = Cluster(spec)
        manager = create_manager("slurm")
        manager.bind(3, 330.0, 165.0, 30.0)  # Wrong unit count.
        with pytest.raises(ValueError, match="bound"):
            PowerServer(
                manager,
                [PowerClient(n) for n in cluster.nodes],
                NetworkModel(),
            )

    def test_rejects_no_clients(self):
        manager = create_manager("slurm")
        manager.bind(2, 220.0, 165.0, 30.0)
        with pytest.raises(ValueError, match="at least one"):
            PowerServer(manager, [], NetworkModel())

"""TcpShardLink against a scripted peer: dial, drop, reconnect, partition.

The peer here is a bare listener the tests drive by hand — accepting,
sending half-frames, and slamming connections shut — so every failure
mode the link claims to absorb is exercised at the socket level rather
than mocked.
"""

import socket
import time

import pytest

from repro.comm.shardlink import TcpShardLink
from repro.comm.wire import FrameAssembler, encode_frame
from repro.telemetry.log import ResilienceEventLog


class Peer:
    """A hand-driven shard-server stand-in: one listener, one session."""

    def __init__(self):
        self.listener = socket.create_server(("127.0.0.1", 0))
        self.listener.settimeout(5.0)
        self.address = self.listener.getsockname()
        self.conn = None
        self.assembler = FrameAssembler()

    def accept(self):
        self.conn, _ = self.listener.accept()
        self.conn.settimeout(5.0)
        self.assembler = FrameAssembler()
        return self.conn

    def recv_docs(self, n=1, timeout_s=5.0):
        """Block until ``n`` frames arrived on the current session."""
        docs = []
        deadline = time.monotonic() + timeout_s
        while len(docs) < n:
            if time.monotonic() > deadline:
                raise TimeoutError(f"got {len(docs)}/{n} docs")
            data = self.conn.recv(65536)
            if not data:
                raise ConnectionError("peer saw EOF")
            docs.extend(self.assembler.feed(data))
        return docs

    def send_doc(self, doc):
        self.conn.sendall(encode_frame(doc))

    def send_raw(self, data):
        self.conn.sendall(data)

    def drop(self):
        """Kill the current session (the link sees EOF or RST)."""
        if self.conn is not None:
            self.conn.close()
            self.conn = None

    def close(self):
        self.drop()
        self.listener.close()


@pytest.fixture
def peer():
    p = Peer()
    yield p
    p.close()


def make_link(peer, **kwargs):
    kwargs.setdefault("backoff_base_s", 0.01)
    kwargs.setdefault("backoff_max_s", 0.05)
    return TcpShardLink(peer.address, shard_id=0, **kwargs)


def drain_until(link, n=1, timeout_s=5.0):
    """Poll the link until ``n`` documents came through."""
    docs = []
    deadline = time.monotonic() + timeout_s
    while len(docs) < n and time.monotonic() < deadline:
        docs.extend(link.take_summaries())
        if len(docs) < n:
            time.sleep(0.01)
    return docs


class TestConnectAndRoundTrip:
    def test_hello_precedes_first_grant(self, peer):
        link = make_link(peer)
        assert link.send_grant({"type": "grant", "seq": 1})
        peer.accept()
        docs = peer.recv_docs(2)
        assert docs[0] == {"type": "hello", "role": "arbiter"}
        assert docs[1] == {"type": "grant", "seq": 1}

    def test_summary_round_trip(self, peer):
        link = make_link(peer)
        assert link.send_grant({"type": "grant", "seq": 1})
        peer.accept()
        peer.recv_docs(2)
        peer.send_doc({"type": "summary", "shard": 0, "seq": 1})
        docs = drain_until(link)
        assert docs == [{"type": "summary", "shard": 0, "seq": 1}]
        assert link.bytes_total > 0

    def test_wait_readable_sees_pending_summary(self, peer):
        link = make_link(peer)
        link.send_grant({"type": "grant", "seq": 1})
        peer.accept()
        peer.recv_docs(2)
        assert not link.wait_readable(0.05)  # nothing sent yet
        peer.send_doc({"type": "summary", "shard": 0, "seq": 1})
        assert link.wait_readable(5.0)
        assert drain_until(link)


class TestReconnect:
    def test_redials_after_peer_drop(self, peer):
        events = ResilienceEventLog()
        link = make_link(peer, events=events)
        link.send_grant({"type": "grant", "seq": 1})
        peer.accept()
        peer.recv_docs(2)
        peer.drop()
        # The drop is only observable once the link touches the socket.
        deadline = time.monotonic() + 5.0
        while link.reconnects == 0 and time.monotonic() < deadline:
            link.take_summaries()
            link.send_grant({"type": "grant", "seq": 2})
            time.sleep(0.01)
        assert link.reconnects == 1
        peer.accept()
        assert peer.recv_docs(1)[0] == {"type": "hello", "role": "arbiter"}
        assert [e.kind for e in events] == ["link_reconnect"]
        assert [e.node_id for e in events] == [0]

    def test_torn_frame_does_not_corrupt_next_session(self, peer):
        link = make_link(peer)
        link.send_grant({"type": "grant", "seq": 1})
        peer.accept()
        peer.recv_docs(2)
        # Half a summary, then the connection dies under it.
        torn = encode_frame({"type": "summary", "shard": 0, "seq": 1})
        peer.send_raw(torn[: len(torn) - 3])
        time.sleep(0.05)
        assert link.take_summaries() == []  # buffered, incomplete
        peer.drop()
        deadline = time.monotonic() + 5.0
        while link.reconnects == 0 and time.monotonic() < deadline:
            link.take_summaries()
            time.sleep(0.01)
        peer.accept()
        peer.recv_docs(1)  # the fresh hello
        # The new session's first frame must decode whole — no torn
        # prefix from the previous session may survive the reconnect.
        peer.send_doc({"type": "summary", "shard": 0, "seq": 2})
        docs = drain_until(link)
        assert docs == [{"type": "summary", "shard": 0, "seq": 2}]

    def test_eof_still_delivers_preceding_bytes(self, peer):
        """A drained shard's final summary survives its process exit."""
        link = make_link(peer)
        link.send_grant({"type": "grant", "seq": 1})
        peer.accept()
        peer.recv_docs(2)
        peer.send_doc({"type": "summary", "shard": 0, "final": True})
        peer.drop()
        docs = drain_until(link)
        assert {"type": "summary", "shard": 0, "final": True} in docs

    def test_dial_failure_backs_off(self, peer):
        # Point the link at a port nothing listens on.
        dead = socket.create_server(("127.0.0.1", 0))
        address = dead.getsockname()
        dead.close()
        link = TcpShardLink(
            address, shard_id=0, backoff_base_s=10.0, backoff_max_s=60.0
        )
        assert not link.send_grant({"type": "grant", "seq": 1})
        assert not link.connected
        # The next attempt is scheduled well in the future: an immediate
        # retry returns without re-dialing (no thundering herd).
        start = time.monotonic()
        assert not link.send_grant({"type": "grant", "seq": 1})
        assert time.monotonic() - start < 1.0


class TestPartition:
    def test_partition_suppresses_dialing_until_heal(self, peer):
        link = make_link(peer)
        link.send_grant({"type": "grant", "seq": 1})
        peer.accept()
        peer.recv_docs(2)
        link.partition()
        assert link.partitioned
        assert not link.connected
        assert not link.send_grant({"type": "grant", "seq": 2})
        assert link.take_summaries() == []
        assert not link.wait_readable(0.01)
        link.heal()
        assert not link.partitioned
        assert link.send_grant({"type": "grant", "seq": 2})
        peer.accept()
        docs = peer.recv_docs(2)
        assert docs[0] == {"type": "hello", "role": "arbiter"}
        assert docs[1] == {"type": "grant", "seq": 2}

    def test_close_allows_immediate_redial(self, peer):
        link = make_link(peer)
        link.send_grant({"type": "grant", "seq": 1})
        peer.accept()
        peer.recv_docs(2)
        link.close()
        assert not link.connected
        assert not link.partitioned
        assert link.send_grant({"type": "grant", "seq": 2})
        peer.accept()
        assert len(peer.recv_docs(2)) == 2

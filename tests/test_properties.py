"""Cross-module property-based tests (hypothesis).

These drive the managers and substrate with randomized-but-valid inputs
and assert the invariants the paper's evaluation depends on: caps always
respect the budget and the per-unit range, the closed loop never crashes
or emits non-finite caps, and the simulator is deterministic in its seed.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import DPSConfig, StatelessConfig
from repro.core.managers import create_manager
from repro.core.stateless import mimd_step
from repro.core.readjust import readjust

MANAGERS = ["constant", "slurm", "dps", "oracle"]


@st.composite
def topology(draw):
    n = draw(st.integers(2, 12))
    max_cap = draw(st.floats(100.0, 200.0))
    min_cap = draw(st.floats(0.0, 40.0))
    budget = draw(
        st.floats(n * max(min_cap, 10.0) + 1.0, n * max_cap)
    )
    return n, budget, max_cap, min_cap


class TestManagerInvariants:
    @pytest.mark.parametrize("name", MANAGERS)
    @given(topo=topology(), seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_caps_valid_over_random_demand(self, name, topo, seed):
        n, budget, max_cap, min_cap = topo
        mgr = create_manager(name)
        mgr.bind(n, budget, max_cap, min_cap,
                 rng=np.random.default_rng(seed))
        rng = np.random.default_rng(seed + 1)
        caps = np.asarray(mgr.caps)
        for _ in range(15):
            demand = rng.uniform(0.0, max_cap, size=n)
            power = np.minimum(demand, caps)
            caps = mgr.step(power, demand)
            assert np.all(np.isfinite(caps))
            assert np.all(caps >= min_cap - 1e-9)
            assert np.all(caps <= max_cap + 1e-9)
            assert caps.sum() <= budget * (1 + 1e-9)

    @given(seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_dps_survives_pathological_power(self, seed):
        """Spiky, flat-lining, and boundary power traces never break DPS."""
        mgr = create_manager("dps", config=DPSConfig())
        mgr.bind(4, 440.0, 165.0, 30.0, rng=np.random.default_rng(seed))
        rng = np.random.default_rng(seed)
        patterns = [
            np.zeros(4),
            np.full(4, 165.0),
            np.array([0.0, 165.0, 0.0, 165.0]),
            rng.uniform(0, 165, 4),
        ]
        for _ in range(10):
            caps = mgr.step(patterns[int(rng.integers(0, 4))])
            assert np.all(np.isfinite(caps))
            assert caps.sum() <= 440.0 + 1e-9


class TestStatelessProperties:
    @given(seed=st.integers(0, 2**31 - 1), n=st.integers(1, 16))
    @settings(max_examples=40, deadline=None)
    def test_mimd_budget_and_bounds(self, seed, n):
        rng = np.random.default_rng(seed)
        power = rng.uniform(0, 165, size=n)
        caps = rng.uniform(30, 165, size=n)
        budget = float(rng.uniform(caps.sum() * 0.8, caps.sum() * 1.3))
        result = mimd_step(
            power, caps, budget, 165.0, 30.0, StatelessConfig(),
            np.random.default_rng(seed),
        )
        assert np.all(result.caps >= 30.0 - 1e-9)
        assert np.all(result.caps <= 165.0 + 1e-9)
        # MIMD never grows the total beyond max(initial total, budget).
        assert result.caps.sum() <= max(caps.sum(), budget) + 1e-6

    @given(seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=40, deadline=None)
    def test_mimd_decrease_monotone(self, seed):
        """A unit's cap never grows when its power is deep below it."""
        rng = np.random.default_rng(seed)
        caps = rng.uniform(60, 165, size=6)
        power = caps * 0.5
        result = mimd_step(
            power, caps, float(caps.sum()), 165.0, 0.0, StatelessConfig(),
            np.random.default_rng(seed),
        )
        assert np.all(result.caps <= caps + 1e-9)


class TestReadjustProperties:
    @given(seed=st.integers(0, 2**31 - 1), n=st.integers(1, 12))
    @settings(max_examples=40, deadline=None)
    def test_grant_never_exceeds_budget(self, seed, n):
        from repro.core.config import ReadjustConfig

        rng = np.random.default_rng(seed)
        caps = rng.uniform(30, 165, size=n)
        priority = rng.random(n) < 0.5
        budget = float(rng.uniform(caps.sum(), caps.sum() + 300))
        out = readjust(caps, priority, budget, 165.0, False, ReadjustConfig())
        assert out.sum() <= budget + 1e-6
        assert np.all(out <= 165.0 + 1e-9)
        # Low-priority units are never touched.
        np.testing.assert_allclose(out[~priority], caps[~priority])

    @given(seed=st.integers(0, 2**31 - 1), n=st.integers(2, 12))
    @settings(max_examples=40, deadline=None)
    def test_equalize_preserves_high_priority_total(self, seed, n):
        from repro.core.config import ReadjustConfig

        rng = np.random.default_rng(seed)
        caps = rng.uniform(30, 160, size=n)
        priority = np.zeros(n, dtype=bool)
        priority[: max(1, n // 2)] = True
        budget = float(caps.sum())  # Exhausted.
        out = readjust(caps, priority, budget, 165.0, False, ReadjustConfig())
        assert out[priority].sum() == pytest.approx(
            caps[priority].sum(), rel=1e-9
        )
        # All equalized to one value.
        assert np.ptp(out[priority]) < 1e-9

"""Cluster and node topology."""

import numpy as np
import pytest

from repro.core.config import ClusterSpec, RaplConfig
from repro.cluster.cluster import Cluster
from repro.cluster.node import Node, Socket


class TestNode:
    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="at least one"):
            Node(0, [])

    def test_unit_ids(self):
        sockets = [
            Socket(i, 0, 165.0, 30.0, RaplConfig(), np.random.default_rng(i))
            for i in (4, 5)
        ]
        assert Node(0, sockets).unit_ids == (4, 5)


class TestCluster:
    def test_default_topology_matches_paper(self):
        cluster = Cluster()
        assert cluster.n_units == 20
        assert len(cluster.nodes) == 10
        assert cluster.budget_w == pytest.approx(2200.0)

    def test_unit_ids_sequential(self):
        cluster = Cluster(ClusterSpec(n_nodes=3, sockets_per_node=2))
        ids = [s.unit_id for s in cluster.sockets]
        assert ids == list(range(6))

    def test_halves_partition_units(self):
        cluster = Cluster(ClusterSpec(n_nodes=4, sockets_per_node=2))
        a = set(cluster.half_unit_ids(0).tolist())
        b = set(cluster.half_unit_ids(1).tolist())
        assert a | b == set(range(8))
        assert not (a & b)

    def test_halves_split_on_node_boundary(self):
        cluster = Cluster(ClusterSpec(n_nodes=4, sockets_per_node=2))
        assert cluster.half_unit_ids(0).tolist() == [0, 1, 2, 3]

    def test_odd_node_count(self):
        cluster = Cluster(ClusterSpec(n_nodes=3, sockets_per_node=2))
        assert cluster.half_unit_ids(0).tolist() == [0, 1]
        assert cluster.half_unit_ids(1).tolist() == [2, 3, 4, 5]

    def test_half_rejects_bad_index(self):
        with pytest.raises(ValueError, match="half"):
            Cluster().half_unit_ids(2)

    def test_single_node_cannot_split(self):
        cluster = Cluster(ClusterSpec(n_nodes=1, sockets_per_node=2))
        with pytest.raises(ValueError, match="two halves"):
            cluster.half_unit_ids(0)

    def test_caps_start_at_tdp(self):
        cluster = Cluster(ClusterSpec(n_nodes=2, sockets_per_node=1))
        np.testing.assert_allclose(cluster.caps_w(), 165.0)


class TestPhysicsInterface:
    def test_step_physics_shape(self):
        cluster = Cluster(ClusterSpec(n_nodes=2, sockets_per_node=2))
        power = cluster.step_physics(np.full(4, 100.0), 1.0)
        assert power.shape == (4,)
        assert np.all(power > 12.0)  # Moving up from idle.

    def test_step_physics_rejects_wrong_shape(self):
        cluster = Cluster(ClusterSpec(n_nodes=2, sockets_per_node=2))
        with pytest.raises(ValueError, match="shape"):
            cluster.step_physics(np.zeros(3), 1.0)

    def test_read_powers_reflect_physics(self):
        spec = ClusterSpec(n_nodes=2, sockets_per_node=1)
        cluster = Cluster(spec, RaplConfig(noise_std_w=0.0))
        for _ in range(20):
            cluster.step_physics(np.array([100.0, 50.0]), 1.0)
            readings = cluster.read_powers_w(1.0)
        assert readings[0] == pytest.approx(100.0, abs=1.5)
        assert readings[1] == pytest.approx(50.0, abs=1.5)

    def test_noise_independent_across_sockets(self):
        spec = ClusterSpec(n_nodes=2, sockets_per_node=1)
        cluster = Cluster(spec, RaplConfig(noise_std_w=3.0),
                          np.random.default_rng(0))
        diffs = []
        for _ in range(100):
            cluster.step_physics(np.array([100.0, 100.0]), 1.0)
            r = cluster.read_powers_w(1.0)
            diffs.append(r[0] - r[1])
        assert np.std(diffs) > 2.0  # Two independent noise streams.

    def test_same_seed_reproducible(self):
        def run(seed):
            cluster = Cluster(
                ClusterSpec(n_nodes=2, sockets_per_node=1),
                RaplConfig(noise_std_w=2.0),
                np.random.default_rng(seed),
            )
            out = []
            for _ in range(10):
                cluster.step_physics(np.array([100.0, 80.0]), 1.0)
                out.append(cluster.read_powers_w(1.0))
            return np.asarray(out)

        np.testing.assert_allclose(run(7), run(7))

    def test_sysfs_view_covers_all_units(self):
        cluster = Cluster(ClusterSpec(n_nodes=2, sockets_per_node=2))
        assert len(cluster.sysfs().list_zones()) == 4

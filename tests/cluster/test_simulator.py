"""Discrete-time engine: termination, accounting, determinism, validation."""

import numpy as np
import pytest

from repro.cluster.cluster import Cluster
from repro.cluster.simulator import Assignment, Simulation
from repro.core.config import ClusterSpec, SimulationConfig
from repro.core.managers import create_manager
from repro.workloads.phases import Hold, PhaseProgram, Ramp
from repro.workloads.spec import WorkloadSpec


def tiny_workload(name="tiny", duration=20.0, level=140.0):
    return WorkloadSpec(
        name=name,
        suite="spark",
        power_class="mid",
        program=PhaseProgram([Ramp(2, 20, level), Hold(duration, level),
                              Ramp(2, level, 20)]),
        active_units=None,
        paper_duration_s=duration,
        paper_above_110_pct=50.0,
        data_size="test",
    )


SPEC = ClusterSpec(n_nodes=2, sockets_per_node=2)


def make_sim(manager="constant", target_runs=1, spec=SPEC, workloads=None,
             **kwargs):
    cluster = Cluster(spec)
    if workloads is None:
        workloads = [
            (tiny_workload("a"), cluster.half_unit_ids(0)),
            (tiny_workload("b"), cluster.half_unit_ids(1)),
        ]
    return Simulation(
        cluster_spec=spec,
        manager=create_manager(manager),
        assignments=[Assignment(spec=w, unit_ids=u) for w, u in workloads],
        target_runs=target_runs,
        sim_config=kwargs.pop(
            "sim_config", SimulationConfig(max_steps=5000, inter_run_gap_s=2.0)
        ),
        seed=kwargs.pop("seed", 1),
        **kwargs,
    )


class TestTermination:
    def test_runs_until_target(self):
        result = make_sim(target_runs=2).run()
        for e in result.executions:
            assert e.runs_completed >= 2
        assert not result.truncated

    def test_truncation_flagged(self):
        sim = make_sim(
            sim_config=SimulationConfig(max_steps=5, inter_run_gap_s=2.0)
        )
        result = sim.run()
        assert result.truncated
        assert len(result.events.of_kind("simulation_truncated")) == 1

    def test_durations_recorded(self):
        result = make_sim().run()
        assert set(result.durations) == {"a", "b"}
        assert all(d > 0 for d in result.durations.values())

    def test_execution_lookup(self):
        result = make_sim().run()
        assert result.execution("a").spec.name == "a"
        with pytest.raises(KeyError, match="nope"):
            result.execution("nope")


class TestAccounting:
    def test_budget_never_exceeded(self):
        for manager in ("constant", "slurm", "dps"):
            result = make_sim(manager=manager).run()
            assert result.max_caps_sum_w <= result.budget_w * (1 + 1e-6)
            assert len(result.events.of_kind("budget_violation")) == 0

    def test_run_events_emitted(self):
        result = make_sim(target_runs=2).run()
        completed = result.events.of_kind("run_completed")
        assert len(completed) >= 4  # 2 workloads x 2 runs.

    def test_telemetry_recorded_when_requested(self):
        result = make_sim(record_telemetry=True).run()
        tl = result.telemetry
        assert tl is not None
        assert len(tl) == result.steps
        assert tl.power_w.shape == (result.steps, 4)

    def test_no_telemetry_by_default(self):
        assert make_sim().run().telemetry is None

    def test_dps_priority_recorded(self):
        result = make_sim(manager="dps", record_telemetry=True).run()
        assert result.telemetry is not None
        assert result.telemetry.priority.dtype == bool


class TestDeterminism:
    def test_same_seed_identical(self):
        r1 = make_sim(manager="dps", seed=9).run()
        r2 = make_sim(manager="dps", seed=9).run()
        assert r1.durations == r2.durations
        assert r1.steps == r2.steps

    def test_different_seed_differs(self):
        r1 = make_sim(manager="dps", seed=9).run()
        r2 = make_sim(manager="dps", seed=10).run()
        assert r1.durations != r2.durations


class TestCapping:
    def test_capped_run_slower_than_uncapped(self):
        constrained = make_sim().run()
        free_spec = ClusterSpec(
            n_nodes=2, sockets_per_node=2, budget_fraction=1.0
        )
        free = make_sim(spec=free_spec).run()
        assert (
            constrained.durations["a"] > free.durations["a"] * 1.02
        )

    def test_oracle_receives_demand(self):
        result = make_sim(manager="oracle").run()
        assert not result.truncated


class TestValidation:
    def test_rejects_overlapping_assignments(self):
        cluster = Cluster(SPEC)
        ids = cluster.half_unit_ids(0)
        with pytest.raises(ValueError, match="overlaps"):
            make_sim(
                workloads=[
                    (tiny_workload("a"), ids),
                    (tiny_workload("b"), ids),
                ]
            )

    def test_rejects_out_of_range_units(self):
        with pytest.raises(ValueError, match="out of range"):
            make_sim(
                workloads=[(tiny_workload("a"), np.array([0, 99]))]
            )

    def test_rejects_empty_assignment(self):
        with pytest.raises(ValueError, match="non-empty|empty"):
            make_sim(workloads=[(tiny_workload("a"), np.array([], dtype=int))])

    def test_rejects_zero_target_runs(self):
        with pytest.raises(ValueError, match="target_runs"):
            make_sim(target_runs=0)

    def test_rejects_no_assignments(self):
        with pytest.raises(ValueError, match="at least one"):
            Simulation(
                cluster_spec=SPEC,
                manager=create_manager("constant"),
                assignments=[],
            )


class TestActuationDelay:
    def test_delayed_actuation_completes_and_respects_budget(self):
        result = make_sim(manager="dps", actuation_delay_steps=1).run()
        assert not result.truncated
        assert result.max_caps_sum_w <= result.budget_w * (1 + 1e-6)

    def test_delay_changes_trajectory(self):
        immediate = make_sim(manager="slurm", seed=4).run()
        delayed = make_sim(
            manager="slurm", seed=4, actuation_delay_steps=2
        ).run()
        # Same seed, different actuation pipeline: the runs must differ.
        assert (
            immediate.durations != delayed.durations
            or immediate.steps != delayed.steps
        )


class TestIdleUnits:
    def test_unassigned_units_stay_idle(self):
        cluster = Cluster(SPEC)
        sim = make_sim(
            workloads=[(tiny_workload("a"), cluster.half_unit_ids(0))],
            record_telemetry=True,
        )
        result = sim.run()
        tl = result.telemetry
        assert tl is not None
        # Units 2-3 were never assigned: their power stays near idle.
        assert float(tl.power_w[:, 2:].mean()) < 20.0


class TestCheckpointing:
    def test_checkpointed_run_matches_plain_run(self, tmp_path):
        plain = make_sim(manager="dps", seed=7).run()
        ckpt = make_sim(
            manager="dps", seed=7,
            checkpoint_dir=tmp_path, checkpoint_every=5,
        ).run()
        # Checkpointing is pure bookkeeping: same seed, same trajectory.
        assert ckpt.durations == plain.durations
        assert ckpt.steps == plain.steps
        assert ckpt.checkpoints_written > 0
        assert ckpt.resumed_at_cycle is None
        assert ckpt.journal_replayed == 0

    def test_resume_restores_controller_state(self, tmp_path):
        first = make_sim(
            manager="dps", seed=7,
            checkpoint_dir=tmp_path, checkpoint_every=5,
        ).run()
        resumed = make_sim(
            manager="dps", seed=7,
            checkpoint_dir=tmp_path, checkpoint_every=5, resume=True,
        ).run()
        assert resumed.resumed_at_cycle is not None
        assert resumed.resumed_at_cycle > 0
        assert not resumed.truncated
        assert resumed.max_caps_sum_w <= resumed.budget_w * (1 + 1e-6)
        assert first.checkpoints_written > 0

    def test_rejects_resume_without_checkpoint_dir(self):
        with pytest.raises(ValueError, match="resume"):
            make_sim(resume=True)

    def test_rejects_checkpointing_on_the_comm_path(self, tmp_path):
        with pytest.raises(ValueError, match="comm"):
            make_sim(use_comm=True, checkpoint_dir=tmp_path)

    def test_rejects_checkpoint_every_below_one(self, tmp_path):
        with pytest.raises(ValueError, match="checkpoint_every"):
            make_sim(checkpoint_dir=tmp_path, checkpoint_every=0)


class TestVerifiedActuation:
    def test_verified_run_is_clean_on_healthy_hardware(self):
        result = make_sim(manager="dps", verify_actuation=True).run()
        assert not result.truncated
        assert result.actuation_retries == 0
        assert result.actuation_verify_failures == 0

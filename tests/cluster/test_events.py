"""Structured event log."""

import pytest

from repro.cluster.events import Event, EventLog


class TestEvent:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown event kind"):
            Event(0.0, "exploded")

    def test_fields(self):
        e = Event(3.0, "run_completed", workload="kmeans", detail="run 2")
        assert e.time_s == 3.0 and e.workload == "kmeans"


class TestEventLog:
    def test_emit_and_iterate(self):
        log = EventLog()
        log.emit(1.0, "run_started", workload="a")
        log.emit(2.0, "run_completed", workload="a")
        assert len(log) == 2
        assert [e.kind for e in log] == ["run_started", "run_completed"]

    def test_of_kind(self):
        log = EventLog()
        log.emit(1.0, "run_started", workload="a")
        log.emit(2.0, "caps_restored")
        assert len(log.of_kind("caps_restored")) == 1

    def test_of_kind_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown event kind"):
            EventLog().of_kind("bogus")

    def test_for_workload(self):
        log = EventLog()
        log.emit(1.0, "run_started", workload="a")
        log.emit(1.0, "run_started", workload="b")
        assert len(log.for_workload("a")) == 1

"""Scheduled node-failure injection in the simulator."""

import numpy as np
import pytest

from repro.cluster.cluster import Cluster
from repro.cluster.events import NodeFailureEvent
from repro.cluster.simulator import Assignment, Simulation
from repro.core.config import ClusterSpec, SimulationConfig
from repro.core.managers import create_manager
from repro.powercap.faults import FaultConfig
from repro.workloads.registry import get_workload

SPEC = ClusterSpec(n_nodes=4, sockets_per_node=2)
SIM = SimulationConfig(time_scale=0.05, max_steps=60_000, inter_run_gap_s=2.0)


def build(manager="dps", failures=(), fault_config=None, record=True,
          use_comm=False, spec=SPEC):
    cluster = Cluster(spec)
    return Simulation(
        cluster_spec=spec,
        manager=create_manager(manager),
        assignments=[
            Assignment(
                spec=get_workload("kmeans"),
                unit_ids=cluster.half_unit_ids(0),
            ),
            Assignment(
                spec=get_workload("gmm"),
                unit_ids=cluster.half_unit_ids(1),
            ),
        ],
        target_runs=1,
        sim_config=SIM,
        seed=7,
        record_telemetry=record,
        failures=failures,
        fault_config=fault_config,
        use_comm=use_comm,
    )


class TestNodeFailureEvent:
    def test_recover_must_follow_fail(self):
        with pytest.raises(ValueError):
            NodeFailureEvent(node_id=0, fail_at_s=10.0, recover_at_s=5.0)

    def test_negative_times_rejected(self):
        with pytest.raises(ValueError):
            NodeFailureEvent(node_id=0, fail_at_s=-1.0)


class TestValidation:
    def test_unknown_node_rejected(self):
        with pytest.raises(ValueError, match="node 9"):
            build(failures=[NodeFailureEvent(node_id=9, fail_at_s=1.0)])

    def test_comm_path_rejects_failures(self):
        with pytest.raises(ValueError, match="comm"):
            build(
                manager="slurm",
                failures=[NodeFailureEvent(node_id=0, fail_at_s=1.0)],
                use_comm=True,
            )


class TestFailureInjection:
    FAILURES = (NodeFailureEvent(node_id=1, fail_at_s=5.0, recover_at_s=20.0),)

    def test_events_fire_once_and_budget_holds(self):
        result = build(failures=self.FAILURES).run()
        assert len(result.events.of_kind("node_failed")) == 1
        assert len(result.events.of_kind("node_recovered")) == 1
        assert result.max_caps_sum_w <= SPEC.budget_w * (1 + 1e-6)
        # Mirrored into the structured telemetry channel.
        assert len(result.telemetry.events.of_kind("node_failed")) == 1

    def test_down_node_reads_zero_then_recovers(self):
        result = build(failures=self.FAILURES).run()
        t = result.telemetry.time_s
        down = (t >= 5.0 + 1.0) & (t <= 20.0 - 1.0)
        up = t > 21.0
        node1 = [2, 3]  # units of node 1 (2 sockets per node)
        assert (result.telemetry.readings_w[down][:, node1] == 0.0).all()
        assert (result.telemetry.readings_w[up][:, node1] > 0.0).all()

    def test_permanent_failure_never_recovers(self):
        failures = (NodeFailureEvent(node_id=0, fail_at_s=3.0),)
        result = build(failures=failures).run()
        assert len(result.events.of_kind("node_failed")) == 1
        assert not result.events.of_kind("node_recovered")

    def test_resilient_manager_survives_failure(self):
        result = build(manager="resilient", failures=self.FAILURES).run()
        assert not result.truncated
        assert result.max_caps_sum_w <= SPEC.budget_w * (1 + 1e-6)


class TestMeterFaultInjection:
    def test_faults_do_not_break_the_run(self):
        cfg = FaultConfig(stuck_prob=0.05, dropout_prob=0.05, spike_prob=0.02)
        result = build(manager="resilient", fault_config=cfg).run()
        assert not result.truncated
        assert result.max_caps_sum_w <= SPEC.budget_w * (1 + 1e-6)

    def test_seed_unchanged_without_faults(self):
        """Enabling the fault plumbing with no config must not disturb the
        seed lineage of an existing simulation."""
        a = build(fault_config=None).run()
        b = build(fault_config=None).run()
        assert a.durations == b.durations

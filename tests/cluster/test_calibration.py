"""Performance-model calibration."""

import numpy as np
import pytest

from repro.core.config import PerfModelConfig
from repro.cluster.calibration import (
    Observation,
    fit_perf_model,
    observe_rates,
)
from repro.cluster.perfmodel import progress_rate


class TestObservation:
    def test_rejects_bad_rate(self):
        with pytest.raises(ValueError, match="rate"):
            Observation(cap_w=100.0, demand_w=150.0, rate=0.0)
        with pytest.raises(ValueError, match="rate"):
            Observation(cap_w=100.0, demand_w=150.0, rate=1.5)

    def test_rejects_negative_power(self):
        with pytest.raises(ValueError):
            Observation(cap_w=-1.0, demand_w=150.0, rate=0.5)


class TestObserveRates:
    def test_skips_unconstrained_points(self):
        obs = observe_rates(
            lambda cap, demand: 0.8,
            caps_w=[100.0, 200.0],
            demands_w=[150.0],
        )
        assert len(obs) == 1  # Only cap=100 < demand=150.
        assert obs[0].cap_w == 100.0


class TestFitPerfModel:
    def _observations(self, true_cfg, noise=0.0, seed=0):
        rng = np.random.default_rng(seed)

        def source(cap, demand):
            rate = float(progress_rate(cap, demand, true_cfg))
            return float(np.clip(rate + rng.normal(0, noise), 1e-3, 1.0))

        return observe_rates(
            source,
            caps_w=np.linspace(40, 160, 10),
            demands_w=np.linspace(80, 165, 6),
        )

    @pytest.mark.parametrize("theta", [1.0, 2.0, 3.0])
    def test_recovers_known_theta(self, theta):
        true_cfg = PerfModelConfig(idle_power_w=12.0, theta=theta)
        result = fit_perf_model(self._observations(true_cfg))
        assert result.config.theta == pytest.approx(theta, abs=0.15)
        assert result.config.idle_power_w == pytest.approx(12.0, abs=5.0)
        assert result.rmse < 0.01

    def test_robust_to_noise(self):
        true_cfg = PerfModelConfig(idle_power_w=12.0, theta=2.0)
        result = fit_perf_model(
            self._observations(true_cfg, noise=0.02, seed=1)
        )
        assert result.config.theta == pytest.approx(2.0, abs=0.4)
        assert result.rmse < 0.05

    def test_reports_sample_size(self):
        true_cfg = PerfModelConfig()
        obs = self._observations(true_cfg)
        result = fit_perf_model(obs)
        assert result.n_observations == len(obs)

    def test_rejects_too_few_observations(self):
        obs = [Observation(100.0, 150.0, 0.8)] * 2
        with pytest.raises(ValueError, match="at least 3"):
            fit_perf_model(obs)

    def test_rejects_bad_theta_range(self):
        obs = [Observation(100.0, 150.0, 0.8)] * 3
        with pytest.raises(ValueError, match="theta_range"):
            fit_perf_model(obs, theta_range=(0.5, 2.0))

"""Cap-to-performance model properties."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import PerfModelConfig
from repro.cluster.perfmodel import progress_rate

CFG = PerfModelConfig(idle_power_w=12.0, theta=2.0, min_rate=0.05)


class TestBasics:
    def test_uncapped_full_speed(self):
        assert progress_rate(165.0, 150.0, CFG) == pytest.approx(1.0)

    def test_cap_equal_demand_full_speed(self):
        assert progress_rate(150.0, 150.0, CFG) == pytest.approx(1.0)

    def test_capped_below_demand_slows(self):
        rate = progress_rate(110.0, 160.0, CFG)
        expected = ((110.0 - 12.0) / (160.0 - 12.0)) ** 0.5
        assert rate == pytest.approx(expected)

    def test_demand_below_idle_full_speed(self):
        assert progress_rate(0.0, 5.0, CFG) == pytest.approx(1.0)

    def test_min_rate_floor(self):
        assert progress_rate(13.0, 165.0, CFG) >= 0.05

    def test_theta_one_linear(self):
        cfg = PerfModelConfig(idle_power_w=12.0, theta=1.0)
        rate = progress_rate(86.0, 160.0, cfg)
        assert rate == pytest.approx((86.0 - 12.0) / (160.0 - 12.0))

    def test_higher_theta_gentler_penalty(self):
        mild = PerfModelConfig(theta=3.0)
        harsh = PerfModelConfig(theta=1.0)
        assert progress_rate(110.0, 160.0, mild) > progress_rate(
            110.0, 160.0, harsh
        )

    def test_vectorized(self):
        rates = progress_rate(
            np.array([165.0, 110.0]), np.array([150.0, 160.0]), CFG
        )
        assert rates.shape == (2,)
        assert rates[0] == pytest.approx(1.0)
        assert rates[1] < 1.0

    def test_rejects_negative_inputs(self):
        with pytest.raises(ValueError):
            progress_rate(-1.0, 100.0, CFG)
        with pytest.raises(ValueError):
            progress_rate(100.0, -1.0, CFG)


class TestProperties:
    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=60, deadline=None)
    def test_rate_bounded(self, seed):
        rng = np.random.default_rng(seed)
        caps = rng.uniform(0, 200, size=16)
        demand = rng.uniform(0, 200, size=16)
        rates = progress_rate(caps, demand, CFG)
        assert np.all(rates >= CFG.min_rate - 1e-12)
        assert np.all(rates <= 1.0 + 1e-12)

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=60, deadline=None)
    def test_monotone_in_cap(self, seed):
        rng = np.random.default_rng(seed)
        demand = float(rng.uniform(50, 200))
        caps = np.sort(rng.uniform(0, 200, size=10))
        rates = progress_rate(caps, np.full(10, demand), CFG)
        assert np.all(np.diff(rates) >= -1e-12)

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=60, deadline=None)
    def test_antitone_in_demand(self, seed):
        rng = np.random.default_rng(seed)
        cap = float(rng.uniform(30, 160))
        demands = np.sort(rng.uniform(20, 200, size=10))
        rates = progress_rate(np.full(10, cap), demands, CFG)
        assert np.all(np.diff(rates) <= 1e-12)

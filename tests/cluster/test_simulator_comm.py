"""Comm-in-the-loop simulation: the control loop over the real protocol."""

import numpy as np
import pytest

from repro.cluster.cluster import Cluster
from repro.cluster.simulator import Assignment, Simulation
from repro.core.config import ClusterSpec, SimulationConfig
from repro.core.managers import create_manager
from repro.workloads.phases import Hold, PhaseProgram, Ramp
from repro.workloads.spec import WorkloadSpec

SPEC = ClusterSpec(n_nodes=2, sockets_per_node=2)


def tiny_workload(name="tiny", duration=20.0, level=140.0):
    return WorkloadSpec(
        name=name,
        suite="spark",
        power_class="mid",
        program=PhaseProgram(
            [Ramp(2, 20, level), Hold(duration, level), Ramp(2, level, 20)]
        ),
        active_units=None,
        paper_duration_s=duration,
        paper_above_110_pct=50.0,
        data_size="test",
    )


def make_sim(manager_name="dps", use_comm=True, seed=1):
    cluster = Cluster(SPEC)
    return Simulation(
        cluster_spec=SPEC,
        manager=create_manager(manager_name),
        assignments=[
            Assignment(spec=tiny_workload("a"), unit_ids=cluster.half_unit_ids(0)),
            Assignment(spec=tiny_workload("b"), unit_ids=cluster.half_unit_ids(1)),
        ],
        target_runs=1,
        sim_config=SimulationConfig(max_steps=5000, inter_run_gap_s=2.0),
        seed=seed,
        use_comm=use_comm,
        record_telemetry=True,
    )


class TestCommLoop:
    def test_completes_and_counts_traffic(self):
        result = make_sim().run()
        assert not result.truncated
        # 3 bytes per unit per direction per step.
        assert result.comm_bytes == result.steps * SPEC.n_units * 6
        assert result.comm_turnaround_s > 0

    def test_direct_loop_reports_no_traffic(self):
        result = make_sim(use_comm=False).run()
        assert result.comm_bytes == 0
        assert result.comm_turnaround_s == 0.0

    def test_budget_respected_over_the_wire(self):
        result = make_sim().run()
        assert result.max_caps_sum_w <= result.budget_w * (1 + 1e-6)

    def test_comm_matches_direct_loop_closely(self):
        """The only difference is the 0.1 W protocol quantization, so the
        measured durations must agree tightly."""
        over_wire = make_sim(use_comm=True, seed=7).run()
        direct = make_sim(use_comm=False, seed=7).run()
        for name in ("a", "b"):
            assert over_wire.durations[name] == pytest.approx(
                direct.durations[name], rel=0.05
            )

    def test_readings_recorded_in_telemetry(self):
        result = make_sim().run()
        tl = result.telemetry
        assert tl is not None
        # Quantized readings still track true power.
        err = np.abs(tl.readings_w - tl.power_w).mean()
        assert err < 5.0

    def test_oracle_rejected_over_comm(self):
        with pytest.raises(ValueError, match="demand"):
            make_sim(manager_name="oracle")

    @pytest.mark.parametrize("manager", ["slurm", "dps", "dps+", "hierarchical"])
    def test_all_wire_managers_work(self, manager):
        result = make_sim(manager_name=manager).run()
        assert not result.truncated

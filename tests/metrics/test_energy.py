"""Energy metrics over telemetry."""

import numpy as np
import pytest

from repro.metrics.energy import (
    energy_delay_product,
    energy_j,
    energy_to_solution_j,
)
from repro.telemetry.log import TelemetryLog


def make_log(steps=10, n_units=2, power=100.0, dt=1.0):
    log = TelemetryLog(n_units)
    for t in range(steps):
        log.record(
            (t + 1) * dt,
            np.full(n_units, power),
            np.full(n_units, power),
            np.full(n_units, 110.0),
        )
    return log


class TestEnergy:
    def test_constant_power(self):
        log = make_log(steps=10, power=100.0)
        # 2 units x 100 W x 10 s = 2000 J.
        assert energy_j(log, np.array([0, 1]), 0.0, 10.0) == pytest.approx(
            2000.0
        )

    def test_single_unit(self):
        log = make_log(steps=10, power=100.0)
        assert energy_j(log, np.array([0]), 0.0, 10.0) == pytest.approx(
            1000.0
        )

    def test_window_subset(self):
        log = make_log(steps=10, power=100.0)
        assert energy_j(log, np.array([0]), 5.0, 10.0) == pytest.approx(
            500.0
        )

    def test_nonuniform_dt(self):
        log = TelemetryLog(1)
        for t in (1.0, 3.0, 6.0):  # dt 2 then 3 (first step inferred as 2).
            log.record(t, np.array([100.0]), np.array([100.0]),
                       np.array([110.0]))
        assert energy_j(log, np.array([0]), 0.0, 6.0) == pytest.approx(
            100.0 * (2 + 2 + 3)
        )

    def test_empty_window_raises(self):
        log = make_log()
        with pytest.raises(ValueError, match="no samples"):
            energy_j(log, np.array([0]), 100.0, 200.0)

    def test_alias(self):
        log = make_log()
        assert energy_to_solution_j(
            log, np.array([0]), 0.0, 10.0
        ) == energy_j(log, np.array([0]), 0.0, 10.0)


class TestEDP:
    def test_known_value(self):
        log = make_log(steps=10, power=100.0)
        edp = energy_delay_product(log, np.array([0, 1]), 0.0, 10.0)
        assert edp == pytest.approx(2000.0 * 10.0)

    def test_rejects_empty_window(self):
        log = make_log()
        with pytest.raises(ValueError, match="positive length"):
            energy_delay_product(log, np.array([0]), 5.0, 5.0)

"""Satisfaction (Eq. 1), fairness (Eq. 2), speedups, summaries."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics.fairness import (
    fairness,
    fairness_performance_correlation,
    pairwise_fairness,
)
from repro.metrics.satisfaction import satisfaction
from repro.metrics.speedup import hmean, paired_hmean_speedup, speedup
from repro.metrics.summary import gain_pct, mean_gain_pct, summarize


class TestSatisfaction:
    def test_fully_met(self):
        assert satisfaction(100.0, 100.0) == pytest.approx(1.0)

    def test_half_met(self):
        assert satisfaction(50.0, 100.0) == pytest.approx(0.5)

    def test_clipped_at_one(self):
        assert satisfaction(105.0, 100.0) == 1.0

    def test_rejects_zero_uncapped(self):
        with pytest.raises(ValueError, match="uncapped"):
            satisfaction(50.0, 0.0)

    def test_rejects_negative_capped(self):
        with pytest.raises(ValueError, match="capped"):
            satisfaction(-1.0, 100.0)


class TestFairness:
    def test_equal_satisfaction_is_one(self):
        assert fairness(0.7, 0.7) == pytest.approx(1.0)

    def test_gap_reduces_fairness(self):
        assert fairness(0.9, 0.6) == pytest.approx(0.7)

    def test_symmetric(self):
        assert fairness(0.3, 0.8) == fairness(0.8, 0.3)

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError, match="satisfaction_i"):
            fairness(1.2, 0.5)
        with pytest.raises(ValueError, match="satisfaction_j"):
            fairness(0.5, -0.1)

    @given(st.floats(0, 1), st.floats(0, 1))
    @settings(max_examples=60, deadline=None)
    def test_bounded(self, a, b):
        assert 0.0 <= fairness(a, b) <= 1.0


class TestPairwiseFairness:
    def test_matrix_properties(self):
        s = np.array([0.5, 0.9, 0.7])
        m = pairwise_fairness(s)
        np.testing.assert_allclose(np.diag(m), 1.0)
        np.testing.assert_allclose(m, m.T)
        assert m[0, 1] == pytest.approx(0.6)

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError, match="\\[0, 1\\]"):
            pairwise_fairness(np.array([0.5, 1.5]))

    def test_rejects_2d(self):
        with pytest.raises(ValueError, match="1-D"):
            pairwise_fairness(np.zeros((2, 2)))


class TestCorrelation:
    def test_positive_relationship(self):
        f = np.array([0.5, 0.7, 0.9, 1.0])
        h = np.array([0.9, 0.95, 1.0, 1.05])
        assert fairness_performance_correlation(f, h) > 0.9

    def test_degenerate_inputs_zero(self):
        assert fairness_performance_correlation(
            np.array([0.5]), np.array([1.0])
        ) == 0.0
        assert fairness_performance_correlation(
            np.array([0.5, 0.5]), np.array([1.0, 2.0])
        ) == 0.0

    def test_rejects_mismatched(self):
        with pytest.raises(ValueError, match="equal-length"):
            fairness_performance_correlation(
                np.array([0.5, 0.6]), np.array([1.0])
            )


class TestHmean:
    def test_known_value(self):
        assert hmean([1.0, 2.0]) == pytest.approx(4 / 3)

    def test_single_value(self):
        assert hmean([5.0]) == 5.0

    def test_dominated_by_small_values(self):
        assert hmean([1.0, 100.0]) < 2.0

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="empty"):
            hmean([])

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError, match="positive"):
            hmean([1.0, 0.0])

    @given(st.lists(st.floats(0.1, 100.0), min_size=1, max_size=10))
    @settings(max_examples=60, deadline=None)
    def test_hmean_below_arithmetic_mean(self, values):
        assert hmean(values) <= np.mean(values) + 1e-9


class TestSpeedup:
    def test_faster_is_above_one(self):
        assert speedup([10.0, 10.0], [8.0, 8.0]) == pytest.approx(1.25)

    def test_slower_is_below_one(self):
        assert speedup([10.0], [12.5]) == pytest.approx(0.8)

    def test_paired_hmean(self):
        assert paired_hmean_speedup(1.0, 1.0) == pytest.approx(1.0)
        assert paired_hmean_speedup(0.5, 1.5) == pytest.approx(0.75)


class TestSummary:
    def test_summarize(self):
        stats = summarize([1.0, 2.0, 4.0])
        assert stats.n == 3
        assert stats.min == 1.0 and stats.max == 4.0
        assert stats.hmean <= stats.mean

    def test_summarize_rejects_empty(self):
        with pytest.raises(ValueError, match="empty"):
            summarize([])

    def test_gain_pct(self):
        assert gain_pct(1.08) == pytest.approx(8.0)
        with pytest.raises(ValueError, match="speedup"):
            gain_pct(0.0)

    def test_mean_gain_pct(self):
        assert mean_gain_pct({"a": 1.1, "b": 1.3}) == pytest.approx(20.0)
        with pytest.raises(ValueError, match="empty"):
            mean_gain_pct({})

"""Bootstrap statistics over repeat runs."""

import numpy as np
import pytest

from repro.metrics.stats import (
    BootstrapCI,
    bootstrap_hmean_ci,
    coefficient_of_variation,
    prob_speedup_exceeds,
)


class TestBootstrapCI:
    def test_point_matches_hmean_speedup(self):
        ci = bootstrap_hmean_ci([8.0, 8.0], [10.0, 10.0])
        assert ci.point == pytest.approx(1.25)

    def test_interval_contains_point_for_tight_samples(self):
        rng = np.random.default_rng(0)
        base = 10.0 + rng.normal(0, 0.1, 20)
        times = 8.0 + rng.normal(0, 0.1, 20)
        ci = bootstrap_hmean_ci(times, base, seed=1)
        assert ci.contains(ci.point)
        assert ci.high - ci.low < 0.1

    def test_wide_variance_widens_interval(self):
        rng = np.random.default_rng(0)
        tight = bootstrap_hmean_ci(
            8.0 + rng.normal(0, 0.05, 15), np.full(15, 10.0), seed=2
        )
        wide = bootstrap_hmean_ci(
            8.0 + rng.normal(0, 2.0, 15), np.full(15, 10.0), seed=2
        )
        assert (wide.high - wide.low) > (tight.high - tight.low)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError, match="confidence"):
            bootstrap_hmean_ci([1.0], [1.0], confidence=1.0)
        with pytest.raises(ValueError, match="n_resamples"):
            bootstrap_hmean_ci([1.0], [1.0], n_resamples=10)
        with pytest.raises(ValueError, match="non-empty"):
            bootstrap_hmean_ci([], [1.0])
        with pytest.raises(ValueError, match="positive"):
            bootstrap_hmean_ci([0.0], [1.0])

    def test_ci_validates_bounds(self):
        with pytest.raises(ValueError, match="low"):
            BootstrapCI(point=1.0, low=2.0, high=1.0, confidence=0.95)

    def test_deterministic_in_seed(self):
        a = bootstrap_hmean_ci([8.0, 9.0, 7.5], [10.0, 10.5], seed=3)
        b = bootstrap_hmean_ci([8.0, 9.0, 7.5], [10.0, 10.5], seed=3)
        assert a == b


class TestCoefficientOfVariation:
    def test_zero_for_constant(self):
        assert coefficient_of_variation([5.0, 5.0, 5.0]) == 0.0

    def test_known_value(self):
        cv = coefficient_of_variation([9.0, 11.0])
        assert cv == pytest.approx(np.std([9, 11], ddof=1) / 10.0)

    def test_rejects_single_sample(self):
        with pytest.raises(ValueError, match="2 samples"):
            coefficient_of_variation([5.0])


class TestProbSpeedupExceeds:
    def test_clear_winner(self):
        a = [8.0, 8.1, 7.9, 8.0]
        b = [10.0, 10.1, 9.9, 10.0]
        assert prob_speedup_exceeds(a, b, seed=1) > 0.99

    def test_clear_loser(self):
        a = [10.0, 10.1, 9.9]
        b = [8.0, 8.1, 7.9]
        assert prob_speedup_exceeds(a, b, seed=1) < 0.01

    def test_tie_near_half(self):
        rng = np.random.default_rng(5)
        a = 10.0 + rng.normal(0, 0.5, 30)
        b = 10.0 + rng.normal(0, 0.5, 30)
        assert 0.2 < prob_speedup_exceeds(a, b, seed=2) < 0.8

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="non-empty"):
            prob_speedup_exceeds([], [1.0])

"""Recovery-event kinds flow through the telemetry log and both exports."""

import csv
import io

import numpy as np
import pytest

from repro.telemetry.export import events_to_csv, from_json, to_json
from repro.telemetry.log import (
    RECOVERY_EVENT_KINDS,
    RecoveryEvent,
    ResilienceEvent,
    ResilienceEventLog,
    TelemetryLog,
)


def recovery_log():
    """A telemetry log whose event channel holds one of each recovery kind."""
    log = TelemetryLog(n_units=2)
    caps = np.array([110.0, 110.0])
    log.record(0.0, np.array([100.0, 90.0]), np.array([99.0, 91.0]), caps)
    for i, kind in enumerate(RECOVERY_EVENT_KINDS):
        log.events.emit(float(i), kind, unit=i % 2, detail=f"d{i}")
    return log


class TestKinds:
    @pytest.mark.parametrize("kind", RECOVERY_EVENT_KINDS)
    def test_all_recovery_kinds_constructible(self, kind):
        assert ResilienceEvent(1.0, kind).kind == kind

    def test_recovery_event_is_the_same_record_type(self):
        # One structured stream: recovery events ride the resilience channel.
        assert RecoveryEvent is ResilienceEvent

    def test_emit_accepts_recovery_kinds(self):
        log = ResilienceEventLog()
        log.emit(0.0, "checkpoint_written", detail="ckpt-00000005.json")
        assert log.of_kind("checkpoint_written")[0].detail.startswith("ckpt")


class TestExportParity:
    def test_json_round_trip(self):
        restored = from_json(to_json(recovery_log()))
        got = [(e.time_s, e.kind, e.unit, e.detail) for e in restored.events]
        want = [
            (float(i), kind, i % 2, f"d{i}")
            for i, kind in enumerate(RECOVERY_EVENT_KINDS)
        ]
        assert got == want

    def test_csv_matches_json(self):
        log = recovery_log()
        restored = from_json(to_json(log))
        rows = list(csv.DictReader(io.StringIO(events_to_csv(log.events))))
        assert len(rows) == len(list(restored.events))
        for row, event in zip(rows, restored.events):
            assert row["kind"] == event.kind
            assert float(row["time_s"]) == event.time_s
            assert int(row["unit"]) == event.unit
            assert row["detail"] == event.detail

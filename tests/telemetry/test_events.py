"""Structured resilience events: log semantics and export round-trips."""

import numpy as np
import pytest

from repro.telemetry.export import events_to_csv, from_json, to_json
from repro.telemetry.log import (
    RESILIENCE_EVENT_KINDS,
    ResilienceEvent,
    ResilienceEventLog,
    TelemetryLog,
)


def small_log():
    log = TelemetryLog(n_units=2)
    caps = np.array([110.0, 110.0])
    log.record(0.0, np.array([100.0, 90.0]), np.array([99.0, 91.0]), caps)
    log.record(1.0, np.array([101.0, 91.0]), np.array([100.0, 92.0]), caps)
    return log


class TestResilienceEvent:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            ResilienceEvent(0.0, "meltdown")

    @pytest.mark.parametrize("kind", RESILIENCE_EVENT_KINDS)
    def test_all_kinds_constructible(self, kind):
        assert ResilienceEvent(1.0, kind).kind == kind


class TestResilienceEventLog:
    def test_emit_of_kind_for_node(self):
        log = ResilienceEventLog()
        log.emit(1.0, "client_quarantined", node_id=2, detail="timeout")
        log.emit(2.0, "client_rejoined", node_id=2)
        log.emit(3.0, "cap_clamped", unit=5, node_id=1)
        assert len(log) == 3
        assert [e.kind for e in log.of_kind("client_rejoined")] == [
            "client_rejoined"
        ]
        assert len(log.for_node(2)) == 2

    def test_extend_merges(self):
        a, b = ResilienceEventLog(), ResilienceEventLog()
        b.emit(0.0, "safe_mode_entered")
        a.extend(b)
        assert len(a) == 1

    def test_extend_merges_chronologically(self):
        """Regression: extend() used to append, leaving interleaved logs
        out of time order and breaking window()-style consumers."""
        a, b = ResilienceEventLog(), ResilienceEventLog()
        a.emit(1.0, "client_quarantined", node_id=0)
        a.emit(3.0, "client_rejoined", node_id=0)
        b.emit(0.0, "safe_mode_entered")
        b.emit(2.0, "safe_mode_exited")
        a.extend(b)
        assert [e.time_s for e in a] == [0.0, 1.0, 2.0, 3.0]

    def test_extend_is_stable_at_equal_times(self):
        """Ties keep self's events first, then the other's, in their
        original order — the merge never reshuffles same-time events."""
        a, b = ResilienceEventLog(), ResilienceEventLog()
        a.emit(1.0, "client_quarantined", node_id=0)
        b.emit(1.0, "safe_mode_entered")
        b.emit(1.0, "safe_mode_exited")
        a.extend(b)
        assert [e.kind for e in a] == [
            "client_quarantined",
            "safe_mode_entered",
            "safe_mode_exited",
        ]


class TestEventExport:
    def test_json_round_trip_preserves_events(self):
        log = small_log()
        log.events.emit(0.0, "node_failed", node_id=1)
        log.events.emit(1.0, "fallback_applied", node_id=1, detail="hold-last")
        restored = from_json(to_json(log))
        assert len(restored.events) == 2
        evts = list(restored.events)
        assert evts[0].kind == "node_failed" and evts[0].node_id == 1
        assert evts[1].detail == "hold-last"

    def test_json_without_events_still_loads(self):
        """Documents written before the events channel keep loading."""
        import json

        doc = json.loads(to_json(small_log()))
        del doc["events"]
        restored = from_json(json.dumps(doc))
        assert len(restored.events) == 0

    def test_events_to_csv(self):
        log = ResilienceEventLog()
        log.emit(2.0, "client_quarantined", node_id=0, detail="poll, timeout")
        text = events_to_csv(log)
        lines = text.strip().splitlines()
        assert lines[0] == "time_s,kind,unit,node_id,detail"
        # A comma inside the detail must not add a column.
        assert lines[1].count(",") == 4

"""Telemetry log and trace analysis."""

import numpy as np
import pytest

from repro.telemetry.analysis import avg_power, extract_phases, fraction_above
from repro.telemetry.log import TelemetryLog


def filled_log(steps=10, n_units=2, power=100.0):
    log = TelemetryLog(n_units)
    for t in range(steps):
        log.record(
            float(t + 1),
            np.full(n_units, power),
            np.full(n_units, power),
            np.full(n_units, 110.0),
        )
    return log


class TestLog:
    def test_rejects_zero_units(self):
        with pytest.raises(ValueError, match="n_units"):
            TelemetryLog(0)

    def test_record_and_shapes(self):
        log = filled_log(steps=5, n_units=3)
        assert len(log) == 5
        assert log.power_w.shape == (5, 3)
        assert log.caps_w.shape == (5, 3)
        assert log.priority.shape == (5, 3)
        assert not log.priority.any()

    def test_priority_recorded(self):
        log = TelemetryLog(2)
        log.record(
            1.0, np.zeros(2), np.zeros(2), np.zeros(2),
            priority=np.array([True, False]),
        )
        assert log.priority[0, 0] and not log.priority[0, 1]

    def test_shape_validation(self):
        log = TelemetryLog(2)
        with pytest.raises(ValueError, match="true_power_w"):
            log.record(1.0, np.zeros(3), np.zeros(2), np.zeros(2))
        with pytest.raises(ValueError, match="priority"):
            log.record(
                1.0, np.zeros(2), np.zeros(2), np.zeros(2),
                priority=np.zeros(3, dtype=bool),
            )

    def test_window_slicing(self):
        log = filled_log(steps=10)
        window = log.window(3.0, 7.0)
        np.testing.assert_allclose(window["time_s"], [4, 5, 6, 7])

    def test_window_rejects_inverted(self):
        with pytest.raises(ValueError, match="end_s"):
            filled_log().window(5.0, 1.0)

    def test_records_are_copies(self):
        log = TelemetryLog(1)
        arr = np.array([50.0])
        log.record(1.0, arr, arr, arr)
        arr[0] = 999.0
        assert log.power_w[0, 0] == 50.0

    def test_empty_log_arrays(self):
        log = TelemetryLog(2)
        assert log.power_w.shape == (0, 2)

    def test_finalize_cache_invalidated_by_record(self):
        log = filled_log(steps=2)
        _ = log.power_w
        log.record(3.0, np.zeros(2), np.zeros(2), np.zeros(2))
        assert log.power_w.shape == (3, 2)


class TestAnalysis:
    def test_avg_power(self):
        log = filled_log(steps=10, power=100.0)
        assert avg_power(log, np.array([0, 1]), 0.0, 10.0) == pytest.approx(
            100.0
        )

    def test_avg_power_empty_window(self):
        with pytest.raises(ValueError, match="no samples"):
            avg_power(filled_log(), np.array([0]), 100.0, 200.0)

    def test_fraction_above(self):
        log = TelemetryLog(1)
        for t, p in enumerate([50.0, 120.0, 130.0, 60.0]):
            log.record(float(t + 1), np.array([p]), np.array([p]),
                       np.array([110.0]))
        assert fraction_above(log, 0, 110.0) == pytest.approx(0.5)

    def test_fraction_above_validates_unit(self):
        with pytest.raises(ValueError, match="unit_id"):
            fraction_above(filled_log(), 5, 110.0)

    def test_fraction_above_empty(self):
        with pytest.raises(ValueError, match="empty"):
            fraction_above(TelemetryLog(1), 0, 110.0)


class TestExtractPhases:
    def test_two_level_trace(self):
        t = np.arange(40, dtype=float)
        p = np.where(t < 20, 60.0, 150.0)
        phases = extract_phases(t, p, min_delta_w=25.0, min_duration_s=3.0)
        assert len(phases) == 2
        assert phases[0].mean_power_w == pytest.approx(60.0)
        assert phases[1].mean_power_w == pytest.approx(150.0)
        assert phases[0].duration_s > 15

    def test_flat_trace_single_phase(self):
        t = np.arange(10, dtype=float)
        phases = extract_phases(t, np.full(10, 90.0))
        assert len(phases) == 1

    def test_short_blips_merged(self):
        t = np.arange(30, dtype=float)
        p = np.full(30, 60.0)
        p[10] = 160.0  # One-sample blip.
        phases = extract_phases(t, p, min_delta_w=25.0, min_duration_s=5.0)
        assert len(phases) <= 3

    def test_empty(self):
        assert extract_phases(np.array([]), np.array([])) == []

    def test_rejects_mismatched(self):
        with pytest.raises(ValueError, match="equal-length"):
            extract_phases(np.zeros(3), np.zeros(2))

    def test_lda_vs_lr_phase_structure(self):
        """Figure 2's qualitative contrast: LDA phases are much longer."""
        from repro.workloads.spark import spark_workload

        lda = spark_workload("lda").program.sample(1.0)
        lr = spark_workload("lr").program.sample(1.0)
        lda_phases = extract_phases(
            np.arange(len(lda), dtype=float), lda
        )
        lr_phases = extract_phases(np.arange(len(lr), dtype=float), lr)
        lda_mean = np.mean([p.duration_s for p in lda_phases])
        lr_mean = np.mean([p.duration_s for p in lr_phases])
        assert lda_mean > 3 * lr_mean

"""The per-cycle phase-timing channel and its exporters."""

import numpy as np
import pytest

from repro.telemetry import (
    CYCLE_PHASES,
    CyclePhaseTimings,
    CycleTimingLog,
    timings_from_json,
    timings_to_csv,
    timings_to_json,
)


def timing(cycle, **phases):
    base = {phase: 0.0 for phase in CYCLE_PHASES}
    base.update(phases)
    return CyclePhaseTimings(cycle=cycle, **base)


class TestCycleTimingLog:
    def test_total_is_the_phase_sum(self):
        t = timing(1, rejoin_s=0.1, poll_s=0.2, collect_s=0.3,
                   decide_s=0.4, dispatch_s=0.5)
        assert t.total_s == pytest.approx(1.5)

    def test_record_iter_and_index(self):
        log = CycleTimingLog()
        assert len(log) == 0
        log.record(timing(1, poll_s=0.01))
        log.record(timing(2, poll_s=0.02))
        assert len(log) == 2
        assert [t.cycle for t in log] == [1, 2]
        assert log[1].poll_s == pytest.approx(0.02)

    def test_as_columns(self):
        log = CycleTimingLog()
        log.record(timing(1, collect_s=0.5, decide_s=0.1))
        log.record(timing(2, collect_s=0.25, decide_s=0.1))
        cols = log.as_columns()
        assert cols["cycle"].dtype == np.int64
        assert list(cols["cycle"]) == [1, 2]
        assert cols["collect_s"] == pytest.approx([0.5, 0.25])
        assert cols["total_s"] == pytest.approx([0.6, 0.35])
        assert set(cols) == {"cycle", "total_s", *CYCLE_PHASES}

    def test_extend_appends_in_order(self):
        a, b = CycleTimingLog(), CycleTimingLog()
        a.record(timing(1))
        b.record(timing(2))
        b.record(timing(3))
        a.extend(b)
        assert [t.cycle for t in a] == [1, 2, 3]


class TestTimingExport:
    def _log(self):
        log = CycleTimingLog()
        log.record(timing(1, rejoin_s=0.001, poll_s=0.002, collect_s=0.4,
                          decide_s=0.003, dispatch_s=0.004))
        log.record(timing(2, poll_s=0.005, collect_s=0.2))
        return log

    def test_csv_shape(self):
        lines = timings_to_csv(self._log()).strip().splitlines()
        assert lines[0] == (
            "cycle,rejoin_s,poll_s,collect_s,decide_s,dispatch_s,total_s"
        )
        assert len(lines) == 3
        row = lines[1].split(",")
        assert row[0] == "1"
        assert float(row[3]) == pytest.approx(0.4)
        assert float(row[6]) == pytest.approx(0.41)

    def test_json_round_trip(self):
        log = self._log()
        back = timings_from_json(timings_to_json(log))
        assert len(back) == len(log)
        for orig, copy in zip(log, back):
            assert copy == orig

    def test_empty_log_round_trips(self):
        back = timings_from_json(timings_to_json(CycleTimingLog()))
        assert len(back) == 0

    def test_rejects_wrong_format_tag(self):
        with pytest.raises(ValueError, match="format"):
            timings_from_json('{"format": "something-else", "cycle": []}')

    def test_rejects_ragged_columns(self):
        doc = timings_to_json(self._log())
        broken = doc.replace(
            '"collect_s": [0.4, 0.2]', '"collect_s": [0.4]'
        )
        assert broken != doc, "fixture must actually break the column"
        with pytest.raises(ValueError, match="collect_s"):
            timings_from_json(broken)

"""Telemetry CSV/JSON serialization."""

import numpy as np
import pytest

from repro.telemetry.export import from_csv, from_json, to_csv, to_json
from repro.telemetry.log import TelemetryLog


def make_log(steps=4, n_units=2):
    log = TelemetryLog(n_units)
    rng = np.random.default_rng(0)
    for t in range(steps):
        log.record(
            float(t + 1),
            rng.uniform(40, 160, n_units),
            rng.uniform(40, 160, n_units),
            np.full(n_units, 110.0),
            priority=rng.random(n_units) < 0.5,
        )
    return log


class TestCsv:
    def test_header_and_row_count(self):
        log = make_log(steps=3, n_units=2)
        lines = to_csv(log).strip().splitlines()
        assert lines[0] == "time_s,unit,power_w,reading_w,cap_w,priority"
        assert len(lines) == 1 + 3 * 2

    def test_values_formatted(self):
        log = TelemetryLog(1)
        log.record(
            1.0, np.array([100.5]), np.array([101.0]), np.array([110.0]),
            priority=np.array([True]),
        )
        row = to_csv(log).strip().splitlines()[1]
        assert row == "1.000,0,100.500,101.000,110.000,1"

    def test_csv_round_trip(self):
        log = make_log(steps=3, n_units=2)
        restored = from_csv(to_csv(log))
        assert restored.n_units == 2
        np.testing.assert_allclose(
            restored.power_w, log.power_w, atol=5e-4
        )
        np.testing.assert_array_equal(restored.priority, log.priority)

    def test_from_csv_requires_header(self):
        with pytest.raises(ValueError, match="header"):
            from_csv("1,0,1,1,1,0\n")

    def test_from_csv_rejects_ragged_steps(self):
        text = (
            "time_s,unit,power_w,reading_w,cap_w,priority\n"
            "1.0,0,1,1,1,0\n"
            "1.0,1,1,1,1,0\n"
            "2.0,0,1,1,1,0\n"
        )
        with pytest.raises(ValueError, match="tile"):
            from_csv(text)

    def test_from_csv_rejects_duplicate_unit_in_step(self):
        text = (
            "time_s,unit,power_w,reading_w,cap_w,priority\n"
            "1.0,0,1,1,1,0\n"
            "1.0,0,1,1,1,0\n"
            "2.0,1,1,1,1,0\n"
            "2.0,1,1,1,1,0\n"
        )
        with pytest.raises(ValueError, match="every unit"):
            from_csv(text)

    def test_from_csv_rejects_empty_body(self):
        with pytest.raises(ValueError, match="no rows"):
            from_csv("time_s,unit,power_w,reading_w,cap_w,priority\n")


class TestJsonRoundTrip:
    def test_exact_round_trip(self):
        log = make_log()
        restored = from_json(to_json(log))
        assert restored.n_units == log.n_units
        np.testing.assert_allclose(restored.time_s, log.time_s)
        np.testing.assert_allclose(restored.power_w, log.power_w)
        np.testing.assert_allclose(restored.readings_w, log.readings_w)
        np.testing.assert_allclose(restored.caps_w, log.caps_w)
        np.testing.assert_array_equal(restored.priority, log.priority)

    def test_rejects_wrong_format(self):
        with pytest.raises(ValueError, match="unsupported"):
            from_json('{"format": "other"}')

    def test_rejects_inconsistent_shapes(self):
        import json

        doc = json.loads(to_json(make_log()))
        doc["caps_w"] = doc["caps_w"][:-1]
        with pytest.raises(ValueError, match="caps_w"):
            from_json(json.dumps(doc))

    def test_empty_log_round_trips(self):
        log = TelemetryLog(3)
        restored = from_json(to_json(log))
        assert len(restored) == 0
        assert restored.n_units == 3

    def test_simulation_log_round_trips_with_analysis(self):
        """A real simulation's telemetry survives export/import with its
        derived metrics intact."""
        import numpy as np

        from repro.cluster.cluster import Cluster
        from repro.cluster.simulator import Assignment, Simulation
        from repro.core.config import ClusterSpec, SimulationConfig
        from repro.core.managers import create_manager
        from repro.metrics.energy import energy_j
        from repro.telemetry.analysis import avg_power
        from repro.workloads.registry import get_workload

        spec = ClusterSpec(n_nodes=2, sockets_per_node=2)
        cluster = Cluster(spec)
        sim = Simulation(
            cluster_spec=spec,
            manager=create_manager("dps"),
            assignments=[
                Assignment(
                    spec=get_workload("sort"),
                    unit_ids=cluster.half_unit_ids(0),
                )
            ],
            target_runs=1,
            sim_config=SimulationConfig(
                time_scale=0.5, max_steps=2000, inter_run_gap_s=0.0
            ),
            seed=6,
            record_telemetry=True,
        )
        result = sim.run()
        log = result.telemetry
        assert log is not None
        restored = from_json(to_json(log))
        units = np.array([0, 1])
        end = float(log.time_s[-1])
        assert avg_power(restored, units, 0.0, end) == pytest.approx(
            avg_power(log, units, 0.0, end)
        )
        assert energy_j(restored, units, 0.0, end) == pytest.approx(
            energy_j(log, units, 0.0, end)
        )


def make_timeline(cycles=3, shards=2):
    from repro.telemetry.log import LeaseTimeline, ShardLeaseSample

    timeline = LeaseTimeline()
    for cycle in range(1, cycles + 1):
        for shard in range(shards):
            committed = float("nan") if cycle == 1 and shard == 1 else 80.0
            timeline.record(
                ShardLeaseSample(
                    cycle=cycle,
                    shard_id=shard,
                    lease_w=110.0 + shard,
                    committed_w=committed,
                    headroom_w=110.0 + shard - committed,
                    seq=cycle,
                    dark=(cycle == 2 and shard == 0),
                    frozen=(cycle == 3 and shard == 1),
                )
            )
    return timeline


class TestLeaseTimeline:
    def test_csv_header_and_rows(self):
        from repro.telemetry.export import leases_to_csv
        from repro.telemetry.log import LEASE_TIMELINE_FIELDS

        timeline = make_timeline(cycles=3, shards=2)
        lines = leases_to_csv(timeline).strip().splitlines()
        assert lines[0] == ",".join(LEASE_TIMELINE_FIELDS)
        assert len(lines) == 1 + 3 * 2

    def test_json_round_trip(self):
        from repro.telemetry.export import leases_from_json, leases_to_json

        timeline = make_timeline()
        restored = leases_from_json(leases_to_json(timeline))
        assert len(restored) == len(timeline)
        for a, b in zip(restored, timeline):
            assert a.cycle == b.cycle
            assert a.shard_id == b.shard_id
            assert a.lease_w == b.lease_w
            assert a.seq == b.seq
            assert a.dark == b.dark
            assert a.frozen == b.frozen
            assert (a.committed_w == b.committed_w) or (
                np.isnan(a.committed_w) and np.isnan(b.committed_w)
            )

    def test_csv_json_parity(self):
        """Both exports carry the same samples in the same order."""
        from repro.telemetry.export import (
            leases_from_json,
            leases_to_csv,
            leases_to_json,
        )
        from repro.telemetry.log import LEASE_TIMELINE_FIELDS

        timeline = make_timeline()
        restored = leases_from_json(leases_to_json(timeline))
        rows = leases_to_csv(timeline).strip().splitlines()[1:]
        assert len(rows) == len(restored)
        for row, sample in zip(rows, restored):
            parts = dict(zip(LEASE_TIMELINE_FIELDS, row.split(",")))
            assert int(parts["cycle"]) == sample.cycle
            assert int(parts["shard_id"]) == sample.shard_id
            assert float(parts["lease_w"]) == pytest.approx(
                sample.lease_w, abs=5e-7
            )
            assert int(parts["seq"]) == sample.seq
            assert bool(int(parts["dark"])) == sample.dark
            assert bool(int(parts["frozen"])) == sample.frozen

    def test_from_json_rejects_wrong_format(self):
        from repro.telemetry.export import leases_from_json

        with pytest.raises(ValueError, match="format"):
            leases_from_json('{"format": "something-else"}')

    def test_from_json_rejects_ragged_columns(self):
        import json as json_mod

        from repro.telemetry.export import leases_from_json, leases_to_json

        doc = json_mod.loads(leases_to_json(make_timeline()))
        doc["seq"] = doc["seq"][:-1]
        with pytest.raises(ValueError, match="seq"):
            leases_from_json(json_mod.dumps(doc))

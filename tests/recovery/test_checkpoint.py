"""Checkpoint store durability/corruption-fallback and the cycle journal."""

import json

import pytest

from repro.recovery.checkpoint import (
    CHECKPOINT_SCHEMA_VERSION,
    CheckpointStore,
    CycleJournal,
)


class TestCheckpointStore:
    def test_save_load_round_trip(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save(12, {"a": [1, 2], "b": "x"})
        ckpt = store.load_latest()
        assert ckpt is not None
        assert ckpt.cycle == 12
        assert ckpt.payload == {"a": [1, 2], "b": "x"}

    def test_empty_store_loads_none(self, tmp_path):
        assert CheckpointStore(tmp_path).load_latest() is None

    def test_generations_pruned_to_keep(self, tmp_path):
        store = CheckpointStore(tmp_path, keep=2)
        for cycle in (5, 10, 15, 20):
            store.save(cycle, {})
        names = [p.name for p in store.paths()]
        assert names == ["ckpt-00000015.json", "ckpt-00000020.json"]

    def test_bit_flipped_checkpoint_falls_back_to_previous_generation(
        self, tmp_path
    ):
        # Regression: a snapshot corrupted on disk (single bit flip in the
        # body) must be rejected by checksum and the previous generation
        # used instead.
        store = CheckpointStore(tmp_path)
        store.save(10, {"caps": [100.0, 110.0]})
        newest = store.save(20, {"caps": [90.0, 120.0]})
        raw = bytearray(newest.read_bytes())
        target = raw.find(b'"body"')
        assert target != -1
        raw[target + 12] ^= 0x01  # Flip one bit inside the body payload.
        newest.write_bytes(bytes(raw))

        ckpt = store.load_latest()
        assert ckpt is not None
        assert ckpt.cycle == 10
        assert store.last_rejected == [newest]

    def test_truncated_checkpoint_rejected(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save(10, {"x": 1})
        newest = store.save(20, {"x": 2})
        text = newest.read_text(encoding="utf-8")
        newest.write_text(text[: len(text) // 2], encoding="utf-8")
        ckpt = store.load_latest()
        assert ckpt is not None and ckpt.cycle == 10

    def test_schema_version_mismatch_rejected(self, tmp_path):
        store = CheckpointStore(tmp_path)
        path = store.save(5, {"x": 1})
        doc = json.loads(path.read_text(encoding="utf-8"))
        assert doc["version"] == CHECKPOINT_SCHEMA_VERSION
        doc["version"] = CHECKPOINT_SCHEMA_VERSION + 1
        path.write_text(json.dumps(doc), encoding="utf-8")
        assert store.load_latest() is None
        assert store.last_rejected == [path]

    def test_all_generations_corrupt_loads_none(self, tmp_path):
        store = CheckpointStore(tmp_path)
        for cycle in (1, 2):
            store.save(cycle, {}).write_text("garbage", encoding="utf-8")
        assert store.load_latest() is None
        assert len(store.last_rejected) == 2

    def test_rejects_keep_below_one(self, tmp_path):
        with pytest.raises(ValueError, match="keep"):
            CheckpointStore(tmp_path, keep=0)


class TestCycleJournal:
    def test_append_read_round_trip(self, tmp_path):
        journal = CycleJournal(tmp_path / "j.log")
        journal.append(1, {"power": [1.0]})
        journal.append(2, {"power": [2.0]})
        records = journal.read()
        assert [(r.cycle, r.data) for r in records] == [
            (1, {"power": [1.0]}),
            (2, {"power": [2.0]}),
        ]

    def test_survives_reopen(self, tmp_path):
        path = tmp_path / "j.log"
        CycleJournal(path).append(1, {"x": 1})
        reopened = CycleJournal(path)
        assert len(reopened) == 1

    def test_torn_tail_line_dropped(self, tmp_path):
        path = tmp_path / "j.log"
        journal = CycleJournal(path)
        journal.append(1, {"x": 1})
        journal.append(2, {"x": 2})
        with open(path, "a", encoding="utf-8") as fh:
            fh.write("deadbeef {torn")  # A crash mid-append.
        assert [r.cycle for r in CycleJournal(path).read()] == [1, 2]

    def test_corrupt_middle_line_stops_replay(self, tmp_path):
        path = tmp_path / "j.log"
        journal = CycleJournal(path)
        for c in (1, 2, 3):
            journal.append(c, {})
        lines = path.read_text(encoding="utf-8").splitlines()
        lines[1] = "0" * 16 + lines[1][16:]
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        assert [r.cycle for r in journal.read()] == [1]

    def test_tail_after_returns_contiguous_run_only(self, tmp_path):
        journal = CycleJournal(tmp_path / "j.log")
        for c in (6, 7, 9):  # Gap at 8.
            journal.append(c, {})
        assert [r.cycle for r in journal.tail_after(5)] == [6, 7]
        assert journal.tail_after(7) == []

    def test_truncate_empties(self, tmp_path):
        journal = CycleJournal(tmp_path / "j.log")
        journal.append(1, {})
        journal.truncate()
        assert journal.read() == [] and len(journal) == 0

    def test_capacity_overflow_drops_oldest_and_latches(self, tmp_path):
        journal = CycleJournal(tmp_path / "j.log", capacity=3)
        for c in (1, 2, 3, 4):
            journal.append(c, {})
        assert journal.overflowed
        assert [r.cycle for r in journal.read()] == [2, 3, 4]
        # The gapped head means checkpoint-only recovery, never a gapped
        # replay.
        assert journal.tail_after(0) == []

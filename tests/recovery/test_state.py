"""Bit-exact array/RNG serialization (the snapshot protocol's substrate)."""

import json

import numpy as np
import pytest

from repro.recovery.state import (
    decode_array,
    encode_array,
    make_rng,
    restore_rng,
    rng_state,
)


class TestArrayCodec:
    @pytest.mark.parametrize(
        "arr",
        [
            np.array([1.0, -2.5, 3e-300, np.inf]),
            np.array([], dtype=np.float64),
            np.arange(6, dtype=np.intp).reshape(2, 3),
            np.array([True, False, True]),
            np.float32([0.1, 0.2]),
        ],
    )
    def test_round_trip_bit_exact(self, arr):
        out = decode_array(encode_array(arr))
        assert out.dtype == arr.dtype
        assert out.shape == arr.shape
        assert out.tobytes() == arr.tobytes()

    def test_nan_payload_survives(self):
        arr = np.array([np.nan, 1.0])
        out = decode_array(encode_array(arr))
        assert np.isnan(out[0]) and out[1] == 1.0

    def test_document_is_json_serializable(self):
        doc = encode_array(np.array([1.5, 2.5]))
        out = decode_array(json.loads(json.dumps(doc)))
        assert out.tolist() == [1.5, 2.5]

    def test_non_contiguous_input(self):
        arr = np.arange(10, dtype=np.float64)[::2]
        assert decode_array(encode_array(arr)).tolist() == arr.tolist()

    def test_decoded_array_is_writable(self):
        out = decode_array(encode_array(np.array([1.0, 2.0])))
        out[0] = 9.0  # Must not raise: restores assign in place.
        assert out[0] == 9.0

    def test_corrupt_byte_count_rejected(self):
        doc = encode_array(np.array([1.0, 2.0, 3.0]))
        doc["shape"] = [2]
        with pytest.raises(ValueError, match="byte"):
            decode_array(doc)


class TestRngCodec:
    def test_restored_stream_continues_identically(self):
        rng = np.random.default_rng(7)
        rng.standard_normal(13)
        state = rng_state(rng)
        a = rng.standard_normal(50)
        b = make_rng(json.loads(json.dumps(state))).standard_normal(50)
        assert a.tobytes() == b.tobytes()

    def test_restore_rng_in_place(self):
        rng = np.random.default_rng(3)
        state = rng_state(rng)
        drifted = np.random.default_rng(3)
        drifted.standard_normal(99)
        restore_rng(drifted, state)
        assert (
            drifted.standard_normal(10).tobytes()
            == np.random.default_rng(3).standard_normal(10).tobytes()
        )

    def test_restore_rng_requires_matching_bit_generator(self):
        state = rng_state(np.random.default_rng(0))
        other = np.random.Generator(np.random.MT19937(0))
        with pytest.raises(ValueError, match="stream"):
            restore_rng(other, state)

    def test_make_rng_builds_named_bit_generator(self):
        src = np.random.Generator(np.random.Philox(5))
        src.integers(0, 10, size=4)
        clone = make_rng(rng_state(src))
        assert type(clone.bit_generator) is np.random.Philox
        assert (
            clone.integers(0, 10, size=8).tobytes()
            == src.integers(0, 10, size=8).tobytes()
        )

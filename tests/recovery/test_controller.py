"""RecoverableController: journal-before-step, checkpointing, resume."""

import numpy as np
import pytest

from repro.core.managers import create_manager
from repro.recovery.checkpoint import CheckpointStore, CycleJournal
from repro.recovery.controller import RecoverableController

N_UNITS = 4


def bound_manager(name="dps", seed=0):
    manager = create_manager(name)
    manager.bind(
        n_units=N_UNITS,
        budget_w=440.0,
        max_cap_w=165.0,
        min_cap_w=30.0,
        dt_s=1.0,
        rng=np.random.default_rng(seed),
    )
    return manager


def make_controller(tmp_path, name="dps", seed=0, every=5):
    return RecoverableController(
        bound_manager(name, seed),
        CheckpointStore(tmp_path),
        CycleJournal(tmp_path / "journal.log"),
        checkpoint_every=every,
    )


def inputs(steps, seed=99):
    rng = np.random.default_rng(seed)
    return [rng.uniform(20.0, 160.0, N_UNITS) for _ in range(steps)]


class TestStepping:
    def test_proxies_manager_surface(self, tmp_path):
        ctl = make_controller(tmp_path)
        mgr = ctl.manager
        assert ctl.name == mgr.name
        assert ctl.n_units == N_UNITS
        assert ctl.budget_w == mgr.budget_w
        assert ctl.initial_cap_w == mgr.initial_cap_w
        assert not ctl.requires_demand

    def test_inputs_journaled_before_step(self, tmp_path):
        ctl = make_controller(tmp_path, every=100)
        for power in inputs(3):
            ctl.step(power)
        assert [r.cycle for r in ctl.journal.read()] == [1, 2, 3]

    def test_checkpoint_cadence_and_journal_truncation(self, tmp_path):
        ctl = make_controller(tmp_path, every=5)
        for power in inputs(12):
            ctl.step(power)
        cycles = [
            int(e.detail.split("-")[1].split(".")[0])
            for e in ctl.events.of_kind("checkpoint_written")
        ]
        assert cycles == [5, 10]
        # Only the two post-checkpoint cycles remain journaled.
        assert [r.cycle for r in ctl.journal.read()] == [11, 12]

    def test_rejects_checkpoint_every_below_one(self, tmp_path):
        with pytest.raises(ValueError, match="checkpoint_every"):
            make_controller(tmp_path, every=0)


class TestResume:
    def test_resume_on_empty_store_returns_false(self, tmp_path):
        assert make_controller(tmp_path).resume() is False

    def test_crash_replay_is_bit_identical(self, tmp_path):
        stream = inputs(40)
        reference = bound_manager(seed=3)
        for power in stream:
            reference.step(power)
        want = [
            np.asarray(reference.step(p)).copy() for p in inputs(10, seed=7)
        ]

        ctl = make_controller(tmp_path, seed=3, every=5)
        for power in stream:  # "Crashes" after cycle 40 (checkpoint at 40).
            ctl.step(power)

        # Fresh process: new manager instance, resume from disk.
        revived = RecoverableController(
            create_manager("dps"),
            CheckpointStore(tmp_path),
            CycleJournal(tmp_path / "journal.log"),
            checkpoint_every=5,
        )
        assert revived.resume() is True
        assert revived.cycle == 40
        got = [
            np.asarray(revived.step(p)).copy() for p in inputs(10, seed=7)
        ]
        for g, w in zip(got, want):
            assert g.tobytes() == w.tobytes()

    def test_journal_tail_replayed_after_mid_interval_crash(self, tmp_path):
        stream = inputs(13)
        ctl = make_controller(tmp_path, seed=5, every=5)
        for power in stream:
            ctl.step(power)  # Last checkpoint at 10; cycles 11-13 journaled.

        revived = RecoverableController(
            create_manager("dps"),
            CheckpointStore(tmp_path),
            CycleJournal(tmp_path / "journal.log"),
            checkpoint_every=5,
        )
        assert revived.resume() is True
        assert revived.cycle == 13
        assert revived.replayed == 3
        kinds = [e.kind for e in revived.events]
        assert "restore_performed" in kinds
        assert "journal_replayed" in kinds

        # The revived controller now equals the uninterrupted one exactly.
        reference = bound_manager(seed=5)
        for power in stream:
            reference.step(power)
        probe = inputs(5, seed=11)
        for p in probe:
            assert (
                np.asarray(revived.step(p)).tobytes()
                == np.asarray(reference.step(p)).tobytes()
            )

    def test_corrupt_newest_generation_reported_and_skipped(self, tmp_path):
        ctl = make_controller(tmp_path, every=5)
        for power in inputs(10):
            ctl.step(power)
        newest = ctl.store.paths()[-1]
        newest.write_text("garbage", encoding="utf-8")

        revived = RecoverableController(
            create_manager("dps"),
            CheckpointStore(tmp_path),
            CycleJournal(tmp_path / "journal.log"),
        )
        assert revived.resume() is True
        assert revived.cycle >= 5
        rejected = revived.events.of_kind("checkpoint_rejected")
        assert [e.detail for e in rejected] == [newest.name]

"""Property: snapshot/restore is invisible in the cap stream.

For every registered manager, running K cycles, snapshotting, restoring
into a *fresh* instance, and running N more cycles must produce caps
bit-identical to an uninterrupted K+N run on the same input stream — the
recovery guarantee that makes warm restarts exact rather than
approximate.
"""

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.managers import available_managers, create_manager

N_UNITS = 4
BUDGET_W = 440.0
MAX_CAP_W = 165.0
MIN_CAP_W = 30.0


def bind(manager, seed):
    manager.bind(
        n_units=N_UNITS,
        budget_w=BUDGET_W,
        max_cap_w=MAX_CAP_W,
        min_cap_w=MIN_CAP_W,
        dt_s=1.0,
        rng=np.random.default_rng(seed),
    )
    return manager


def make_inputs(steps, seed):
    rng = np.random.default_rng(seed)
    return [
        (
            rng.uniform(20.0, 160.0, N_UNITS),
            rng.uniform(20.0, 200.0, N_UNITS),
        )
        for _ in range(steps)
    ]


def drive(manager, inputs):
    caps = []
    for readings, demand in inputs:
        out = manager.step(
            readings, demand if manager.requires_demand else None
        )
        caps.append(np.asarray(out, dtype=np.float64).copy())
    return caps


@pytest.mark.parametrize("name", available_managers())
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    k=st.integers(min_value=1, max_value=10),
    n=st.integers(min_value=1, max_value=10),
)
@settings(max_examples=8, deadline=None)
def test_restore_midstream_is_bit_identical(name, seed, k, n):
    inputs = make_inputs(k + n, seed + 1)

    uninterrupted = drive(bind(create_manager(name), seed), inputs)

    first = bind(create_manager(name), seed)
    head = drive(first, inputs[:k])
    # The snapshot travels as JSON, exactly as a checkpoint would store it.
    state = json.loads(json.dumps(first.snapshot()))

    second = create_manager(name)
    second.restore(state)
    tail = drive(second, inputs[k:])

    for got, want in zip(head + tail, uninterrupted):
        assert got.tobytes() == want.tobytes()


@pytest.mark.parametrize("name", available_managers())
def test_restore_rejects_wrong_manager_name(name):
    state = bind(create_manager(name), 0).snapshot()
    others = [m for m in available_managers() if m != name]
    impostor = create_manager(others[0])
    with pytest.raises(ValueError, match="snapshot"):
        impostor.restore(state)


def test_snapshot_requires_bound_manager():
    with pytest.raises(RuntimeError):
        create_manager("dps").snapshot()

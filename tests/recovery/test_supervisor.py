"""Heartbeat, watchdog, and the restartable-attempt supervisor."""

import time

import pytest

from repro.recovery.supervisor import (
    ControllerCrash,
    ControllerHang,
    Heartbeat,
    Supervisor,
    Watchdog,
)


class TestHeartbeat:
    def test_beat_resets_staleness(self):
        hb = Heartbeat()
        time.sleep(0.02)
        assert hb.seconds_since() >= 0.02
        hb.beat()
        assert hb.seconds_since() < 0.02

    def test_abort_is_sticky_and_observable(self):
        hb = Heartbeat()
        assert not hb.aborted
        hb.abort()
        hb.beat()
        assert hb.aborted
        assert hb.wait_aborted(0.01)


class TestWatchdog:
    def test_fires_on_stale_heartbeat(self):
        hb = Heartbeat()
        dog = Watchdog(hb, timeout_s=0.05, poll_s=0.01)
        dog.start()
        try:
            deadline = time.monotonic() + 2.0
            while not hb.aborted and time.monotonic() < deadline:
                time.sleep(0.01)
            assert dog.fired and hb.aborted
        finally:
            dog.stop()

    def test_quiet_while_beaten(self):
        hb = Heartbeat()
        dog = Watchdog(hb, timeout_s=0.1, poll_s=0.01)
        dog.start()
        try:
            for _ in range(10):
                hb.beat()
                time.sleep(0.02)
            assert not dog.fired and not hb.aborted
        finally:
            dog.stop()

    def test_rejects_nonpositive_timeout(self):
        with pytest.raises(ValueError, match="timeout_s"):
            Watchdog(Heartbeat(), timeout_s=0.0)


class TestSupervisor:
    def test_success_on_first_attempt(self):
        sup = Supervisor(max_restarts=3, hang_timeout_s=5.0)
        assert sup.run(lambda index, hb: index) == 0
        assert sup.restarts == 0

    def test_restarts_until_success(self):
        sup = Supervisor(max_restarts=3, hang_timeout_s=5.0)

        def attempt(index, heartbeat):
            if index < 2:
                raise ControllerCrash(f"boom {index}")
            return "done"

        assert sup.run(attempt) == "done"
        assert sup.restarts == 2
        kinds = [e.kind for e in sup.events]
        assert kinds.count("controller_killed") == 2
        assert kinds.count("controller_restarted") == 2

    def test_exhausted_budget_reraises_crash(self):
        sup = Supervisor(max_restarts=1, hang_timeout_s=5.0)

        def attempt(index, heartbeat):
            raise ControllerCrash("always")

        with pytest.raises(ControllerCrash):
            sup.run(attempt)
        assert sup.restarts == 1

    def test_hang_detected_by_watchdog_and_restarted(self):
        sup = Supervisor(max_restarts=1, hang_timeout_s=0.05)

        def attempt(index, heartbeat):
            if index == 0:
                # Stall without beating; the watchdog must end this.
                while not heartbeat.aborted:
                    time.sleep(0.005)
                raise ControllerHang("stalled")
            return index

        assert sup.run(attempt) == 1
        kinds = [e.kind for e in sup.events]
        assert "controller_hung" in kinds and "controller_restarted" in kinds

    def test_rejects_negative_max_restarts(self):
        with pytest.raises(ValueError, match="max_restarts"):
            Supervisor(max_restarts=-1)

"""CLI parser and the fast subcommands."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_pair_args(self):
        args = build_parser().parse_args(
            ["--time-scale", "0.1", "pair", "kmeans", "gmm",
             "--manager", "dps"]
        )
        assert args.command == "pair"
        assert args.workload_a == "kmeans"
        assert args.manager == ["dps"]
        assert args.time_scale == 0.1

    def test_figure_choices(self):
        args = build_parser().parse_args(["figure", "fig4"])
        assert args.which == "fig4"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "fig99"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestFastCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "kmeans" in out and "dps" in out

    def test_figure1(self, capsys):
        assert main(["figure", "fig1"]) == 0
        out = capsys.readouterr().out
        assert "Figure 1" in out and "dps" in out

    def test_pair_runs(self, capsys):
        code = main(
            ["--time-scale", "0.05", "--repeats", "1",
             "pair", "sort", "wordcount", "--manager", "constant"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "fairness" in out

    def test_campaign_runs_and_writes(self, capsys, tmp_path):
        out_file = tmp_path / "campaign.json"
        code = main(
            ["--time-scale", "0.05", "--repeats", "1",
             "campaign", "--group", "low_utility", "--limit-pairs", "1",
             "--out", str(out_file)]
        )
        assert code == 0
        assert "campaign summary" in capsys.readouterr().out
        from repro.experiments.campaign import CampaignResult

        restored = CampaignResult.from_json(out_file.read_text())
        assert len(restored.records) == 3  # 1 pair x 3 low-utility managers.

    def test_sweep_parser(self):
        args = build_parser().parse_args(
            ["sweep", "noise", "--pair", "bayes", "sort"]
        )
        assert args.which == "noise"
        assert args.pair == ["bayes", "sort"]

    def test_report_round_trip(self, capsys, tmp_path):
        out_file = tmp_path / "c.json"
        main(
            ["--time-scale", "0.05", "--repeats", "1",
             "campaign", "--group", "low_utility", "--limit-pairs", "1",
             "--out", str(out_file)]
        )
        capsys.readouterr()
        assert main(["report", str(out_file)]) == 0
        out = capsys.readouterr().out
        assert "# Campaign report" in out
        assert "## low_utility" in out

    def test_pair_checkpointed_then_resume(self, capsys, tmp_path):
        ckpt = tmp_path / "session"
        code = main(
            ["--time-scale", "0.05", "--repeats", "1",
             "pair", "sort", "wordcount", "--manager", "constant",
             "--checkpoint-dir", str(ckpt), "--checkpoint-every", "1"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "checkpointed pair sort/wordcount" in out
        assert "cold" in out and "budget ok" in out
        # The session is self-describing: meta + per-manager state on disk.
        assert (ckpt / "session.json").exists()
        assert (ckpt / "constant" / "journal.log").exists()
        assert list((ckpt / "constant").glob("ckpt-*.json"))

        assert main(["resume", str(ckpt)]) == 0
        out = capsys.readouterr().out
        assert "resumed pair sort/wordcount" in out
        assert "cycle" in out  # Warm restore, not a cold start.

    def test_resume_of_nonexistent_session_fails_helpfully(self, tmp_path):
        with pytest.raises(SystemExit, match="resumable"):
            main(["resume", str(tmp_path / "nope")])

    def test_pair_rejects_chaos_with_checkpointing(self, tmp_path):
        with pytest.raises(SystemExit, match="chaos"):
            main(
                ["pair", "sort", "wordcount", "--chaos", "flaky_nodes",
                 "--checkpoint-dir", str(tmp_path)]
            )

    def test_module_entry_point(self):
        import subprocess
        import sys

        proc = subprocess.run(
            [sys.executable, "-m", "repro", "list"],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert proc.returncode == 0
        assert "dps" in proc.stdout


class TestDistributedCli:
    def test_worker_parser(self):
        args = build_parser().parse_args(
            ["worker", "127.0.0.1:7801", "--max-jobs", "3",
             "--chaos-kill-after", "1"]
        )
        assert args.command == "worker"
        assert args.address == "127.0.0.1:7801"
        assert args.max_jobs == 3
        assert args.chaos_kill_after == 1

    def test_worker_rejects_bad_address(self):
        with pytest.raises(SystemExit, match="host:port"):
            main(["worker", "noport"])

    def test_campaign_and_sweep_take_worker_options(self):
        for head in (["campaign"], ["sweep", "budget"]):
            args = build_parser().parse_args(
                head + ["--workers", "h:1,h:2", "--worker-timeout", "9",
                        "--max-retries", "5"]
            )
            assert args.workers == "h:1,h:2"
            assert args.worker_timeout == 9.0
            assert args.max_retries == 5

    def test_campaign_rejects_malformed_workers(self):
        with pytest.raises(SystemExit, match="host:port"):
            main(["campaign", "--group", "low_utility", "--limit-pairs",
                  "1", "--workers", "nonsense"])

    def test_campaign_rejects_bad_worker_timeout(self):
        with pytest.raises(SystemExit, match="worker-timeout"):
            main(["campaign", "--workers", "h:1", "--worker-timeout", "0"])

    def test_campaign_over_loopback_worker(self, capsys):
        from repro.experiments.distributed import DistributedWorker

        worker = DistributedWorker()
        worker.serve_in_background()
        try:
            code = main(
                ["--time-scale", "0.05", "--repeats", "1",
                 "campaign", "--group", "low_utility", "--limit-pairs",
                 "1", "--workers", worker.address,
                 "--worker-timeout", "10"]
            )
        finally:
            worker.stop()
        assert code == 0
        captured = capsys.readouterr()
        assert "[worker_joined]" in captured.out
        assert "campaign summary" in captured.out
        assert worker.jobs_done > 0

    def test_unreachable_worker_warns_and_falls_back(self, capsys):
        import socket

        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        dead = f"127.0.0.1:{probe.getsockname()[1]}"
        probe.close()
        code = main(
            ["--time-scale", "0.05", "--repeats", "1",
             "campaign", "--group", "low_utility", "--limit-pairs", "1",
             "--workers", dead, "--worker-timeout", "2"]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "worker_skipped" in captured.err
        assert "campaign summary" in captured.out

    def test_worker_concurrency_parsed(self):
        args = build_parser().parse_args(
            ["worker", "127.0.0.1:7801", "--concurrency", "4"]
        )
        assert args.concurrency == 4

    def test_worker_rejects_bad_concurrency(self):
        with pytest.raises(SystemExit, match="concurrency"):
            main(["worker", "127.0.0.1:7801", "--concurrency", "0"])


class TestShardsCli:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["shards"])
        assert args.command == "shards"
        assert args.shards == 4
        assert args.nodes == 16
        assert args.kill is None

    def test_rejects_malformed_chaos_tokens(self):
        with pytest.raises(SystemExit, match="SHARD@CYCLE"):
            main(["shards", "--kill", "nonsense"])
        with pytest.raises(SystemExit, match="START-END"):
            main(["shards", "--partition", "1@bad"])
        with pytest.raises(SystemExit, match="SHARD@START-END"):
            main(["shards", "--partition", "4-9"])
        with pytest.raises(SystemExit, match="END > START"):
            main(["shards", "--arbiter-outage", "9-3"])

    def test_rejects_unknown_manager(self):
        with pytest.raises(SystemExit, match="unknown manager"):
            main(["shards", "--manager", "nope"])

    def test_rejects_demand_manager(self):
        with pytest.raises(SystemExit, match="demand"):
            main(["shards", "--manager", "oracle"])

    def test_clean_run_renders_summary(self, capsys):
        code = main(
            ["shards", "--shards", "2", "--nodes", "4", "--cycles", "6"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "sharded control plane (thread mode): 2 shards" in out
        assert "budget respected" in out
        assert "0 violation(s)" in out

    def test_thread_mode_rejects_membership_flags(self):
        with pytest.raises(SystemExit, match="process"):
            main(["shards", "--shards", "2", "--nodes", "4", "--cycles", "6",
                  "--admit-at", "2"])
        with pytest.raises(SystemExit, match="process"):
            main(["shards", "--shards", "2", "--nodes", "4", "--cycles", "6",
                  "--drain", "1@2"])

    def test_process_run_with_drain_renders_membership(self, capsys, tmp_path):
        code = main(
            ["shards", "--shards", "2", "--nodes", "4", "--cycles", "10",
             "--mode", "process", "--drain", "1@4",
             "--checkpoint-dir", str(tmp_path / "ckpt")]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "sharded control plane (process mode): 2 shards" in out
        assert "drained: shard 1 (rc=0)" in out
        assert "shard_draining" in out
        assert "shard_drained" in out
        assert "budget respected" in out
        assert "0 violation(s)" in out

    def test_chaos_run_writes_lease_timeline(self, capsys, tmp_path):
        timeline = tmp_path / "leases.json"
        code = main(
            ["shards", "--shards", "2", "--nodes", "4", "--cycles", "10",
             "--kill", "1@3", "--arbiter-outage", "4-7",
             "--checkpoint-dir", str(tmp_path / "ckpt"),
             "--lease-timeline", str(timeline)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "shard_killed" in out
        assert "arbiter_restarted" in out
        from repro.telemetry.export import leases_from_json

        restored = leases_from_json(timeline.read_text())
        assert len(restored) > 0
        assert (tmp_path / "ckpt" / "arbiter").exists()

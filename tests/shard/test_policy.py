"""The arbiter's redistribution policy: branches and Hypothesis properties."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.shard.lease import ArbiterConfig
from repro.shard.policy import redistribute


def run(
    lease,
    committed,
    floor=None,
    ceiling=None,
    units=None,
    priority=None,
    frozen=None,
    budget_w=None,
    config=None,
):
    lease = np.asarray(lease, dtype=np.float64)
    n = lease.shape[0]
    committed = np.asarray(committed, dtype=np.float64)
    floor = np.zeros(n) if floor is None else np.asarray(floor, float)
    ceiling = (
        np.full(n, 1e9) if ceiling is None else np.asarray(ceiling, float)
    )
    units = np.ones(n) if units is None else np.asarray(units, float)
    priority = (
        np.zeros(n, bool) if priority is None else np.asarray(priority, bool)
    )
    frozen = (
        np.zeros(n, bool) if frozen is None else np.asarray(frozen, bool)
    )
    budget_w = float(lease.sum()) if budget_w is None else budget_w
    return redistribute(
        lease_w=lease,
        committed_w=committed,
        floor_w=floor,
        ceiling_w=ceiling,
        n_units=units,
        priority=priority,
        frozen=frozen,
        budget_w=budget_w,
        config=config,
    )


class TestValidation:
    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="at least one shard"):
            run([], [])

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError, match="committed_w shape"):
            run([100.0, 100.0], [80.0])

    def test_rejects_nan_committed_on_live_shard(self):
        with pytest.raises(ValueError, match="no committed power"):
            run([100.0, 100.0], [80.0, np.nan])

    def test_nan_committed_ok_when_frozen(self):
        result = run(
            [100.0, 100.0], [80.0, np.nan], frozen=[False, True]
        )
        assert result.leases_w[1] == 100.0

    def test_rejects_infeasible_input(self):
        # Frozen shard holds 150 W, live shard proved 100 W: 250 > 200.
        with pytest.raises(ValueError, match="infeasible"):
            run(
                [150.0, 100.0],
                [np.nan, 100.0],
                frozen=[True, False],
                budget_w=200.0,
            )


class TestRestoreBranch:
    def test_all_idle_restores_proportional_base(self):
        # Both shards far below 80 % of their 100 W base.
        result = run([150.0, 50.0], [20.0, 20.0], budget_w=200.0)
        assert result.restored
        np.testing.assert_allclose(result.leases_w, [100.0, 100.0])

    def test_restore_skipped_with_dark_shard(self):
        result = run(
            [150.0, 50.0], [20.0, np.nan], frozen=[False, True],
            budget_w=200.0,
        )
        assert not result.restored
        assert result.leases_w[1] == 50.0

    def test_restore_respects_units_proportionality(self):
        result = run(
            [100.0, 100.0], [10.0, 10.0], units=[1.0, 3.0], budget_w=200.0
        )
        assert result.restored
        np.testing.assert_allclose(result.leases_w, [50.0, 150.0])


class TestHandOutBranch:
    def test_reclaims_headroom_to_priority_shard(self):
        cfg = ArbiterConfig(headroom_fraction=0.10)
        # Shard 0 idles at 40/200 W; shard 1 is saturated and priority.
        result = run(
            [200.0, 200.0],
            [40.0, 199.0],
            ceiling=[400.0, 400.0],
            priority=[False, True],
            budget_w=400.0,
            config=cfg,
        )
        assert not result.restored
        assert result.reclaimed_w > 0
        assert result.leases_w[0] < 200.0
        assert result.leases_w[1] > 200.0
        # Drawn-down shard keeps its committed power plus headroom.
        assert result.leases_w[0] >= 40.0 * 1.10 - 1e-9

    def test_frozen_shard_untouched(self):
        result = run(
            [120.0, 200.0, 200.0],
            [np.nan, 50.0, 199.0],
            ceiling=[400.0] * 3,
            priority=[False, False, True],
            frozen=[True, False, False],
            budget_w=520.0,
        )
        assert result.leases_w[0] == 120.0
        assert result.granted_w[0] == 0.0

    def test_granted_and_reclaimed_accounting(self):
        result = run(
            [200.0, 200.0],
            [40.0, 199.0],
            ceiling=[400.0, 400.0],
            priority=[False, True],
            budget_w=400.0,
        )
        grew = np.maximum(result.leases_w - [200.0, 200.0], 0.0)
        np.testing.assert_allclose(result.granted_w, grew)
        shrank = np.maximum([200.0, 200.0] - result.leases_w, 0.0)
        assert result.reclaimed_w == pytest.approx(float(shrank.sum()))


class TestEqualizeBranch:
    def test_priority_shards_equalized_per_unit(self):
        # No leftover (sum == budget), two saturated priority shards with
        # skewed per-unit leases.
        result = run(
            [300.0, 100.0],
            [295.0, 99.0],
            ceiling=[400.0, 400.0],
            units=[2.0, 2.0],
            priority=[True, True],
            budget_w=400.0,
        )
        per_unit = result.leases_w / 2.0
        # Equalization moves the per-unit leases toward each other but
        # never below a shard's protected power.
        assert per_unit[0] < 150.0
        assert per_unit[1] > 50.0
        assert result.leases_w[0] >= 295.0 - 1e-9


# ---------------------------------------------------------------------------
# Hypothesis properties (the two contracts promised in the module doc).
# ---------------------------------------------------------------------------


@st.composite
def policy_inputs(draw):
    """Feasible redistribute() inputs: budget covers the protected power."""
    n = draw(st.integers(min_value=1, max_value=6))
    units = np.asarray(
        draw(
            st.lists(
                st.integers(min_value=1, max_value=64),
                min_size=n,
                max_size=n,
            )
        ),
        dtype=np.float64,
    )
    min_cap = draw(st.floats(min_value=0.0, max_value=50.0))
    max_cap = min_cap + draw(st.floats(min_value=10.0, max_value=200.0))
    floor = units * min_cap
    ceiling = units * max_cap
    frac = np.asarray(
        draw(
            st.lists(
                st.floats(min_value=0.0, max_value=1.0),
                min_size=n,
                max_size=n,
            )
        )
    )
    lease = floor + frac * (ceiling - floor)
    cfrac = np.asarray(
        draw(
            st.lists(
                st.floats(min_value=0.0, max_value=1.2),
                min_size=n,
                max_size=n,
            )
        )
    )
    committed = cfrac * lease
    frozen = np.asarray(
        draw(st.lists(st.booleans(), min_size=n, max_size=n)), dtype=bool
    )
    priority = np.asarray(
        draw(st.lists(st.booleans(), min_size=n, max_size=n)), dtype=bool
    )
    committed = np.where(frozen, np.nan, committed)
    protected = np.where(
        ~frozen,
        np.clip(committed, floor, np.maximum(lease, floor)),
        lease,
    )
    budget = float(protected.sum()) + draw(
        st.floats(min_value=0.0, max_value=500.0)
    )
    budget = max(budget, 1e-6)
    return dict(
        lease_w=lease,
        committed_w=committed,
        floor_w=floor,
        ceiling_w=ceiling,
        n_units=units,
        priority=priority,
        frozen=frozen,
        budget_w=budget,
    )


@settings(max_examples=200, deadline=None)
@given(inputs=policy_inputs())
def test_leases_never_exceed_budget(inputs):
    result = redistribute(**inputs)
    budget = inputs["budget_w"]
    assert float(result.leases_w.sum()) <= budget * (1 + 1e-7) + 1e-6


@settings(max_examples=200, deadline=None)
@given(inputs=policy_inputs())
def test_live_leases_never_drop_below_protected(inputs):
    result = redistribute(**inputs)
    live = ~inputs["frozen"]
    protected = np.clip(
        inputs["committed_w"],
        inputs["floor_w"],
        np.maximum(inputs["lease_w"], inputs["floor_w"]),
    )
    assert np.all(
        result.leases_w[live] >= protected[live] - 1e-6
    ), (result.leases_w, protected)


@settings(max_examples=200, deadline=None)
@given(inputs=policy_inputs())
def test_frozen_shards_untouched(inputs):
    result = redistribute(**inputs)
    dark = inputs["frozen"]
    np.testing.assert_array_equal(
        result.leases_w[dark], inputs["lease_w"][dark]
    )
    assert np.all(result.granted_w[dark] == 0.0)


@settings(max_examples=100, deadline=None)
@given(inputs=policy_inputs())
def test_deterministic(inputs):
    first = redistribute(**inputs)
    second = redistribute(**inputs)
    np.testing.assert_array_equal(first.leases_w, second.leases_w)
    np.testing.assert_array_equal(first.granted_w, second.granted_w)
    assert first.reclaimed_w == second.reclaimed_w
    assert first.restored == second.restored

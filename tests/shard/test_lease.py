"""Lease documents, arbiter config validation, and the ShardLink."""

import pytest

from repro.shard.lease import ArbiterConfig, BudgetLease, ShardLink, ShardSummary


class TestArbiterConfig:
    def test_defaults_valid(self):
        cfg = ArbiterConfig()
        assert cfg.lease_term_cycles >= cfg.period_cycles

    def test_period_positive(self):
        with pytest.raises(ValueError, match="period_cycles"):
            ArbiterConfig(period_cycles=0)

    def test_term_covers_period(self):
        with pytest.raises(ValueError, match="lease_term_cycles"):
            ArbiterConfig(period_cycles=3, lease_term_cycles=2)

    def test_restore_threshold_bounds(self):
        with pytest.raises(ValueError, match="restore_threshold"):
            ArbiterConfig(restore_threshold=0.0)
        with pytest.raises(ValueError, match="restore_threshold"):
            ArbiterConfig(restore_threshold=1.5)

    def test_headroom_nonnegative(self):
        with pytest.raises(ValueError, match="headroom_fraction"):
            ArbiterConfig(headroom_fraction=-0.1)

    def test_epsilon_positive(self):
        with pytest.raises(ValueError, match="budget_epsilon"):
            ArbiterConfig(budget_epsilon=0.0)


class TestDocuments:
    def test_lease_round_trip(self):
        lease = BudgetLease(shard_id=3, seq=7, budget_w=412.5, term_cycles=6)
        assert BudgetLease.from_doc(lease.to_doc()) == lease

    def test_lease_rejects_wrong_type(self):
        with pytest.raises(ValueError, match="grant"):
            BudgetLease.from_doc({"type": "summary"})

    def test_summary_round_trip(self):
        summary = ShardSummary(
            shard_id=1,
            cycle=9,
            seq=4,
            lease_w=220.0,
            committed_w=180.5,
            worst_w=200.0,
            headroom_w=39.5,
            high_priority=True,
            n_units=2,
            frozen=False,
        )
        assert ShardSummary.from_doc(summary.to_doc()) == summary

    def test_summary_rejects_wrong_type(self):
        with pytest.raises(ValueError, match="summary"):
            ShardSummary.from_doc({"type": "grant"})


def grant_doc(seq=1, budget_w=100.0):
    return BudgetLease(
        shard_id=0, seq=seq, budget_w=budget_w, term_cycles=6
    ).to_doc()


def summary_doc(cycle=0):
    return ShardSummary(
        shard_id=0,
        cycle=cycle,
        seq=0,
        lease_w=100.0,
        committed_w=80.0,
        worst_w=90.0,
        headroom_w=20.0,
        high_priority=False,
        n_units=2,
        frozen=False,
    ).to_doc()


class TestShardLink:
    def test_duplex_delivery(self):
        link = ShardLink()
        assert link.send_grant(grant_doc(seq=1))
        assert link.send_grant(grant_doc(seq=2))
        assert link.send_summary(summary_doc(cycle=5))
        grants = link.take_grants()
        assert [g["seq"] for g in grants] == [1, 2]
        summaries = link.take_summaries()
        assert [s["cycle"] for s in summaries] == [5]
        # Queues drained.
        assert link.take_grants() == []
        assert link.take_summaries() == []

    def test_wire_faithful_round_trip(self):
        link = ShardLink()
        doc = grant_doc(seq=3, budget_w=123.456)
        link.send_grant(doc)
        assert link.take_grants() == [doc]

    def test_partition_drops_both_directions(self):
        link = ShardLink()
        link.partition()
        assert link.partitioned
        assert not link.send_grant(grant_doc())
        assert not link.send_summary(summary_doc())
        link.heal()
        assert not link.partitioned
        # Dropped frames stay dropped; new frames flow.
        assert link.take_grants() == []
        assert link.take_summaries() == []
        assert link.send_grant(grant_doc(seq=9))
        assert [g["seq"] for g in link.take_grants()] == [9]

    def test_bytes_counted_only_for_accepted_frames(self):
        link = ShardLink()
        link.send_grant(grant_doc())
        accepted = link.bytes_total
        assert accepted > 0
        link.partition()
        link.send_grant(grant_doc())
        assert link.bytes_total == accepted

"""The loopback multi-shard harness: clean runs and the chaos acceptance.

The acceptance bar (mirrored by the CI ``shard-chaos-soak`` job): eight
real shard servers over localhost TCP under one arbiter, with a shard
killed mid-session, another hung until its watchdog fires, a link
partitioned and healed, and the arbiter itself killed and restarted from
its checkpoint — the global budget-conservation invariant holds on every
arbiter cycle and every recovery step is a structured event.
"""

import json

import numpy as np
import pytest

from repro.cluster.cluster import Cluster
from repro.core.config import ClusterSpec, RaplConfig
from repro.core.constant import ConstantManager
from repro.deploy.loopback import RecoveryOptions
from repro.shard import (
    ArbiterConfig,
    ShardChaosSchedule,
    run_sharded,
)
from repro.telemetry.export import leases_to_csv
from repro.telemetry.log import SHARD_EVENT_KINDS


def make_cluster(n_nodes, sockets_per_node=2, seed=0):
    return Cluster(
        ClusterSpec(n_nodes=n_nodes, sockets_per_node=sockets_per_node),
        RaplConfig(noise_std_w=0.0),
        np.random.default_rng(seed),
    )


def run(cluster, tmp_path, n_shards, cycles, chaos=None, config=None,
        recovery=None, seed=1):
    demand = np.full(cluster.n_units, 0.6)
    return run_sharded(
        cluster,
        n_shards=n_shards,
        manager_factory=lambda i: ConstantManager(),
        demand_fn=lambda step: demand,
        cycles=cycles,
        checkpoint_dir=tmp_path / "ckpt",
        config=config or ArbiterConfig(period_cycles=2),
        chaos=chaos,
        recovery=recovery
        or RecoveryOptions(checkpoint_dir=tmp_path / "ckpt"),
        rng=np.random.default_rng(seed),
    )


def dump_artifacts(result, tmp_path, name):
    """Write the logs the CI soak job uploads on failure."""
    rows = [
        {
            "time_s": e.time_s,
            "kind": e.kind,
            "node_id": e.node_id,
            "detail": e.detail,
        }
        for e in result.events
    ]
    (tmp_path / f"{name}_events.json").write_text(json.dumps(rows, indent=1))
    (tmp_path / f"{name}_leases.csv").write_text(
        leases_to_csv(result.timeline)
    )


class TestScheduleValidation:
    def test_heal_must_follow_partition(self):
        with pytest.raises(ValueError, match="heals"):
            ShardChaosSchedule(partition_at={0: 5}, heal_at={0: 4})

    def test_kill_and_hang_cannot_collide(self):
        with pytest.raises(ValueError, match="killed and hung"):
            ShardChaosSchedule(shard_kill_at={1: 3}, shard_hang_at={1: 3})

    def test_arbiter_restart_must_follow_kill(self):
        with pytest.raises(ValueError, match="restarts"):
            ShardChaosSchedule(arbiter_kill_at=5, arbiter_restart_at=5)

    def test_unknown_shard_rejected(self, tmp_path):
        cluster = make_cluster(n_nodes=4, sockets_per_node=1)
        with pytest.raises(ValueError, match="unknown shard"):
            run(
                cluster,
                tmp_path,
                n_shards=2,
                cycles=4,
                chaos=ShardChaosSchedule(shard_kill_at={7: 1}),
            )

    def test_shard_count_bounds(self, tmp_path):
        cluster = make_cluster(n_nodes=2, sockets_per_node=1)
        with pytest.raises(ValueError, match="n_shards"):
            run(cluster, tmp_path, n_shards=3, cycles=2)


class TestCleanRun:
    def test_two_shards_conserve_budget(self, tmp_path):
        cluster = make_cluster(n_nodes=4)
        result = run(cluster, tmp_path, n_shards=2, cycles=8)
        assert result.cycles == 8
        assert result.n_shards == 2
        assert result.failed_shards == ()
        assert result.shard_restarts == [0, 0]
        assert result.invariant_violations == 0
        assert result.arbiter_cycles == 4
        assert result.invariant_sweeps == result.arbiter_cycles
        assert float(result.leases_w.sum()) <= result.budget_w * (1 + 1e-9)
        assert result.worst_case_w <= result.budget_w * (1 + 1e-9)
        # Every arbiter cycle sampled every shard.
        assert len(result.timeline) == result.arbiter_cycles * 2
        assert result.bytes_links > 0
        assert np.isfinite(result.power_history).all()
        assert result.cycle_wall_s.shape == (8,)
        assert len(result.events.of_kind("shard_registered")) == 2

    def test_arbiter_kill_without_restart_freezes_shards(self, tmp_path):
        cluster = make_cluster(n_nodes=4)
        result = run(
            cluster,
            tmp_path,
            n_shards=2,
            cycles=12,
            config=ArbiterConfig(period_cycles=2, lease_term_cycles=2),
            chaos=ShardChaosSchedule(arbiter_kill_at=4),
        )
        assert result.failed_shards == ()
        assert result.invariant_violations == 0
        assert result.events.of_kind("arbiter_killed")
        # With the arbiter dark past the lease term, every shard froze
        # itself at its last confirmed committed power.
        frozen = {e.node_id for e in result.events.of_kind("shard_frozen")}
        assert frozen == {0, 1}
        assert not result.events.of_kind("shard_unfrozen")
        # Final leases come from the shards themselves.
        assert float(result.leases_w.sum()) <= result.budget_w * (1 + 1e-9)


class TestChaosAcceptance:
    def test_eight_shards_full_failure_matrix(self, tmp_path):
        cluster = make_cluster(n_nodes=16, sockets_per_node=2)
        chaos = ShardChaosSchedule(
            shard_kill_at={2: 8},
            shard_hang_at={5: 12},
            partition_at={1: 10},
            heal_at={1: 18},
            arbiter_kill_at=20,
            arbiter_restart_at=24,
        )
        result = run(
            cluster,
            tmp_path,
            n_shards=8,
            cycles=28,
            config=ArbiterConfig(period_cycles=2, lease_term_cycles=2),
            chaos=chaos,
            recovery=RecoveryOptions(
                checkpoint_dir=tmp_path / "ckpt",
                checkpoint_every=2,
                hang_timeout_s=0.5,
            ),
        )
        dump_artifacts(result, tmp_path, "shard_chaos")

        # The global invariant held on every arbiter cycle, across both
        # arbiter incarnations.
        assert result.invariant_violations == 0
        assert result.invariant_sweeps == result.arbiter_cycles > 0
        assert result.worst_case_w <= result.budget_w * (1 + 1e-6)
        assert float(result.leases_w.sum()) <= result.budget_w * (1 + 1e-9)

        # Every injected failure recovered.
        assert result.failed_shards == ()
        assert result.shard_restarts[2] == 1  # The kill.
        assert result.shard_restarts[5] == 1  # The hang.
        assert result.arbiter_restarts == 1

        # No silent failover: every transition is a structured event.
        kinds = {e.kind for e in result.events}
        for expected in (
            "shard_registered",
            "shard_lease_granted",
            "shard_lease_applied",
            "shard_lease_expired",
            "shard_frozen",
            "shard_unfrozen",
            "shard_quarantined",
            "shard_rejoined",
            "shard_killed",
            "shard_hung",
            "shard_restarted",
            "shard_partitioned",
            "shard_partition_healed",
            "arbiter_killed",
            "arbiter_restarted",
            "controller_killed",
            "controller_hung",
            "controller_restarted",
        ):
            assert expected in kinds, f"missing {expected} event"
        assert "shard_dead" not in kinds
        assert kinds & set(SHARD_EVENT_KINDS) <= set(SHARD_EVENT_KINDS)

        # Restart accounting matches the structured trail.
        restarted = result.events.of_kind("shard_restarted")
        assert len(restarted) == sum(result.shard_restarts)

        # The partitioned shard froze during the partition and was
        # unfrozen after the heal.
        frozen_1 = [
            e for e in result.events.of_kind("shard_frozen")
            if e.node_id == 1
        ]
        unfrozen_1 = [
            e for e in result.events.of_kind("shard_unfrozen")
            if e.node_id == 1
        ]
        assert frozen_1 and unfrozen_1
        assert unfrozen_1[-1].time_s > frozen_1[0].time_s

        # The restarted arbiter resumed from its checkpoint.
        [restart] = result.events.of_kind("arbiter_restarted")
        assert "resumed_from_checkpoint=True" in restart.detail

"""Process-mode acceptance: a real shard-server fleet under OS chaos.

The thread-mode harness (:mod:`tests.shard.test_harness`) proves the
lease protocol against *simulated* failures.  This module re-runs the
same failure matrix with nothing simulated: each shard is a
``dps-repro shard-server`` subprocess behind a real TCP link, SIGKILL
stands in for a crash, SIGTERM for a graceful drain, and a severed
socket for a partition — plus the two drills only live membership makes
possible, admitting a new shard and draining an old one mid-chaos.
The acceptance bar is unchanged: the global budget-conservation
invariant holds on every arbiter cycle and every recovery or membership
step is a structured event.  Mirrored by the CI ``shard-process-chaos``
job.
"""

import json

import numpy as np
import pytest

from repro.cluster.cluster import Cluster
from repro.core.config import ClusterSpec, RaplConfig
from repro.core.constant import ConstantManager
from repro.deploy.loopback import RecoveryOptions
from repro.shard import ArbiterConfig, ShardChaosSchedule, run_sharded
from repro.telemetry.export import leases_to_csv


def make_cluster(n_nodes, sockets_per_node=1, seed=0):
    return Cluster(
        ClusterSpec(n_nodes=n_nodes, sockets_per_node=sockets_per_node),
        RaplConfig(noise_std_w=0.0),
        np.random.default_rng(seed),
    )


def run_process(cluster, tmp_path, n_shards, cycles, chaos=None, config=None,
                recovery=None, **kwargs):
    demand = np.full(cluster.n_units, 0.6)
    return run_sharded(
        cluster,
        n_shards=n_shards,
        manager_factory=lambda i: ConstantManager(),
        demand_fn=lambda step: demand,
        cycles=cycles,
        checkpoint_dir=tmp_path / "ckpt",
        config=config or ArbiterConfig(period_cycles=2),
        chaos=chaos,
        recovery=recovery
        or RecoveryOptions(checkpoint_dir=tmp_path / "ckpt"),
        mode="process",
        manager_name="constant",
        **kwargs,
    )


def dump_artifacts(result, tmp_path, name):
    """Write the logs the CI chaos job uploads on failure."""
    rows = [
        {
            "time_s": e.time_s,
            "kind": e.kind,
            "node_id": e.node_id,
            "detail": e.detail,
        }
        for e in result.events
    ]
    (tmp_path / f"{name}_events.json").write_text(json.dumps(rows, indent=1))
    (tmp_path / f"{name}_leases.csv").write_text(
        leases_to_csv(result.timeline)
    )


class TestScheduleValidation:
    def test_drained_shard_cannot_be_killed(self):
        with pytest.raises(ValueError, match="drained and killed"):
            ShardChaosSchedule(drain_at={1: 4}, shard_kill_at={1: 6})

    def test_drained_shard_cannot_be_hung(self):
        with pytest.raises(ValueError, match="drained and killed"):
            ShardChaosSchedule(drain_at={2: 4}, shard_hang_at={2: 8})

    def test_admit_cannot_fall_inside_arbiter_outage(self):
        with pytest.raises(ValueError, match="inside the .*outage"):
            ShardChaosSchedule(
                admit_at=10, arbiter_kill_at=8, arbiter_restart_at=14
            )

    def test_drain_cannot_fall_inside_arbiter_outage(self):
        with pytest.raises(ValueError, match="inside .*the .*outage"):
            ShardChaosSchedule(
                drain_at={0: 10}, arbiter_kill_at=8, arbiter_restart_at=14
            )

    def test_thread_mode_rejects_membership_chaos(self, tmp_path):
        cluster = make_cluster(4)
        with pytest.raises(ValueError, match="process"):
            run_sharded(
                cluster,
                n_shards=2,
                manager_factory=lambda i: ConstantManager(),
                demand_fn=lambda step: np.full(cluster.n_units, 0.5),
                cycles=4,
                checkpoint_dir=tmp_path / "ckpt",
                chaos=ShardChaosSchedule(admit_at=2),
                recovery=RecoveryOptions(checkpoint_dir=tmp_path / "ckpt"),
            )

    def test_process_mode_requires_manager_name(self, tmp_path):
        cluster = make_cluster(4)
        with pytest.raises(ValueError, match="manager_name"):
            run_sharded(
                cluster,
                n_shards=2,
                manager_factory=lambda i: ConstantManager(),
                demand_fn=lambda step: np.full(cluster.n_units, 0.5),
                cycles=4,
                checkpoint_dir=tmp_path / "ckpt",
                recovery=RecoveryOptions(checkpoint_dir=tmp_path / "ckpt"),
                mode="process",
            )


class TestProcessCleanRun:
    def test_two_shard_fleet_matches_thread_guarantees(self, tmp_path):
        cluster = make_cluster(4)
        result = run_process(cluster, tmp_path, n_shards=2, cycles=8)
        dump_artifacts(result, tmp_path, "process_clean")

        assert result.mode == "process"
        assert result.invariant_violations == 0
        assert result.invariant_sweeps == result.arbiter_cycles > 0
        assert result.failed_shards == ()
        assert result.shard_restarts == [0, 0]
        assert result.worst_case_w <= result.budget_w * (1 + 1e-6)
        assert np.nansum(result.leases_w) <= result.budget_w * (1 + 1e-6)
        # No process died, so every cycle of every unit reported power.
        assert np.isfinite(result.power_history).all()
        assert np.isfinite(result.caps_history).all()
        assert result.bytes_links > 0
        kinds = {e.kind for e in result.events}
        assert "shard_registered" in kinds
        assert "shard_lease_applied" in kinds
        # A healthy fleet never trips the recovery machinery.
        assert "shard_killed" not in kinds
        assert "link_reconnect" not in kinds


class TestProcessChaosAcceptance:
    def test_full_failure_matrix_with_live_membership(self, tmp_path):
        """The PR-7 matrix over real processes, plus admit and drain.

        Four shard-servers; one SIGKILLed, one hung until the watchdog
        SIGKILLs it, one partitioned and healed at the socket level, a
        fifth admitted live, a fourth drained via SIGTERM, and the
        arbiter itself killed and restarted from its checkpoint with
        the drifted membership.  Budget conservation is swept on every
        arbiter cycle of every arbiter incarnation.
        """
        cluster = make_cluster(8)
        chaos = ShardChaosSchedule(
            shard_kill_at={1: 6},
            shard_hang_at={2: 10},
            partition_at={0: 8},
            heal_at={0: 14},
            admit_at=10,
            drain_at={3: 12},
            arbiter_kill_at=16,
            arbiter_restart_at=20,
        )
        result = run_process(
            cluster,
            tmp_path,
            n_shards=4,
            cycles=24,
            chaos=chaos,
            config=ArbiterConfig(period_cycles=2, lease_term_cycles=2),
            recovery=RecoveryOptions(
                checkpoint_dir=tmp_path / "ckpt",
                checkpoint_every=2,
                hang_timeout_s=2.0,
                restart_delay_cycles=1,
            ),
        )
        dump_artifacts(result, tmp_path, "process_matrix")

        # Conservation: swept every arbiter cycle, never violated.
        assert result.invariant_violations == 0
        assert result.invariant_sweeps == result.arbiter_cycles > 0
        assert result.worst_case_w <= result.budget_w * (1 + 1e-6)
        assert np.nansum(result.leases_w) <= result.budget_w * (1 + 1e-6)

        # Every failure recovered within its restart budget.
        assert result.failed_shards == ()
        assert result.shard_restarts[1] == 1  # SIGKILL -> --resume respawn
        assert result.shard_restarts[2] == 1  # watchdog SIGKILL -> respawn
        assert result.arbiter_restarts == 1

        # Live membership: one admit, one drain, drain exited cleanly.
        assert result.admitted == (4,)
        assert result.drained == (3,)
        assert result.drained_rcs[3] == 0

        # The partitioned link re-dialed at least once after healing,
        # and the SIGKILLed shards forced reconnects of their own.
        assert result.link_reconnects >= 1

        kinds = {e.kind for e in result.events}
        expected = {
            "shard_registered",
            "shard_lease_granted",
            "shard_lease_applied",
            "shard_lease_expired",
            "shard_frozen",
            "shard_unfrozen",
            "shard_quarantined",
            "shard_rejoined",
            "shard_killed",
            "shard_hung",
            "shard_restarted",
            "shard_partitioned",
            "shard_partition_healed",
            "shard_admitted",
            "shard_draining",
            "shard_drained",
            "link_reconnect",
            "arbiter_killed",
            "arbiter_restarted",
            "controller_killed",
            "controller_hung",
            "controller_restarted",
        }
        missing = expected - kinds
        assert not missing, f"missing event kinds: {sorted(missing)}"
        assert "shard_dead" not in kinds

        # Every supervised respawn is one structured event.
        restarted = [e for e in result.events if e.kind == "shard_restarted"]
        assert len(restarted) == sum(result.shard_restarts)

        # Membership events carry the member they concern.
        admitted = [e for e in result.events if e.kind == "shard_admitted"]
        assert [e.node_id for e in admitted] == [4]
        drained = [e for e in result.events if e.kind == "shard_drained"]
        assert [e.node_id for e in drained] == [3]
        assert "reclaimed" in drained[0].detail

        # The partitioned shard froze at its committed power, then
        # thawed once the healed link delivered a fresh lease.
        times = {
            kind: [e.time_s for e in result.events if e.kind == kind]
            for kind in ("shard_frozen", "shard_unfrozen")
        }
        assert times["shard_frozen"] and times["shard_unfrozen"]
        assert min(times["shard_frozen"]) < max(times["shard_unfrozen"])

        # The restarted arbiter resumed from its checkpoint snapshot.
        restarts = [
            e for e in result.events if e.kind == "arbiter_restarted"
        ]
        assert len(restarts) == 1
        assert "resumed_from_checkpoint=True" in restarts[0].detail


class TestCodecParity:
    def test_thread_mode_rejects_binary_codec(self, tmp_path):
        cluster = make_cluster(4)
        with pytest.raises(ValueError, match="binary"):
            run_sharded(
                cluster,
                n_shards=2,
                manager_factory=lambda i: ConstantManager(),
                demand_fn=lambda step: np.full(cluster.n_units, 0.5),
                cycles=4,
                checkpoint_dir=tmp_path / "ckpt",
                recovery=RecoveryOptions(checkpoint_dir=tmp_path / "ckpt"),
                codec="binary",
            )

    def test_binary_codec_bit_identical_under_chaos(self, tmp_path):
        """The binary wire is an encoding, not a different computation.

        Run the same seeded chaos session twice — once over the JSON
        clock plane, once over the binary one — and demand bit-identical
        powers and caps in every surviving cell of the history, the same
        NaN mask for the dead ones, and zero invariant violations on
        both.  Anything less means the codec moved a value.
        """
        chaos = ShardChaosSchedule(shard_kill_at={1: 4}, drain_at={0: 8})
        results = {}
        for codec in ("json", "binary"):
            cluster = make_cluster(4, seed=7)
            results[codec] = run_process(
                cluster,
                tmp_path / codec,
                n_shards=2,
                cycles=12,
                chaos=chaos,
                config=ArbiterConfig(period_cycles=2, lease_term_cycles=2),
                recovery=RecoveryOptions(
                    checkpoint_dir=tmp_path / codec / "ckpt",
                    checkpoint_every=2,
                ),
                codec=codec,
            )
        ref, bin_ = results["json"], results["binary"]
        assert ref.codec == "json" and bin_.codec == "binary"
        assert ref.invariant_violations == 0
        assert bin_.invariant_violations == 0
        assert np.array_equal(
            ref.power_history, bin_.power_history, equal_nan=True
        )
        assert np.array_equal(
            ref.caps_history, bin_.caps_history, equal_nan=True
        )
        # Both planes meter their traffic.  (The binary codec's byte
        # win is a scale effect — at two units per shard the array
        # headers dominate; benchmarks/bench_shards.py measures the
        # ratio at fleet scale.)
        assert ref.bytes_clock > 0
        assert bin_.bytes_clock > 0

    def test_ack_event_cap_truncates_with_marker(self, tmp_path):
        """An over-cap ack drops the tail and says so, once per ack."""
        cluster = make_cluster(4)
        result = run_process(
            cluster,
            tmp_path,
            n_shards=2,
            cycles=8,
            max_ack_events=0,
        )
        assert result.invariant_violations == 0
        truncated = [
            e for e in result.events if e.kind == "events_truncated"
        ]
        assert truncated, "cap of 0 never tripped on a live fleet"
        assert "cap of 0" in truncated[0].detail
        # With a zero cap no raw shard event survives the wire.
        assert "shard_lease_applied" not in {e.kind for e in result.events}


class TestGracefulDrain:
    def test_sigterm_drain_reclaims_budget(self, tmp_path):
        cluster = make_cluster(4)
        chaos = ShardChaosSchedule(drain_at={1: 4})
        result = run_process(
            cluster,
            tmp_path,
            n_shards=2,
            cycles=12,
            chaos=chaos,
            config=ArbiterConfig(period_cycles=2, lease_term_cycles=2),
        )
        dump_artifacts(result, tmp_path, "process_drain")

        assert result.invariant_violations == 0
        assert result.failed_shards == ()
        assert result.drained == (1,)
        assert result.drained_rcs[1] == 0
        kinds = {e.kind for e in result.events}
        assert "shard_draining" in kinds
        assert "shard_drained" in kinds
        # Graceful: the drain never looked like a failure.
        assert "shard_killed" not in kinds
        assert "controller_killed" not in kinds
        assert np.nansum(result.leases_w) <= result.budget_w * (1 + 1e-6)
        # The drained shard leaves the timeline after its final frozen
        # summary is acknowledged; the survivor keeps being arbitrated,
        # and never below its original fair share.
        drained_samples = result.timeline.for_shard(1)
        survivor_samples = result.timeline.for_shard(0)
        assert drained_samples and survivor_samples
        assert (
            max(s.cycle for s in drained_samples)
            < max(s.cycle for s in survivor_samples)
        )
        assert survivor_samples[-1].lease_w >= survivor_samples[0].lease_w

"""BudgetArbiter driven from the shard side over real ShardLinks."""

import numpy as np
import pytest

from repro.recovery.checkpoint import CheckpointStore
from repro.shard.arbiter import ArbiterShard, BudgetArbiter
from repro.shard.lease import ShardLink, ShardSummary

BUDGET = 440.0  # Two 2-unit shards at the default 110 W/unit budget.


def make_arbiter(n=2, budget_w=BUDGET, **kwargs):
    links = [ShardLink() for _ in range(n)]
    specs = [
        ArbiterShard(
            shard_id=i,
            link=links[i],
            n_units=2,
            min_cap_w=30.0,
            max_cap_w=165.0,
        )
        for i in range(n)
    ]
    return BudgetArbiter(budget_w=budget_w, shards=specs, **kwargs), links


def report(
    link,
    shard_id,
    cycle=0,
    seq=0,
    lease_w=220.0,
    committed_w=180.0,
    frozen=False,
    prio=False,
):
    link.send_summary(
        ShardSummary(
            shard_id=shard_id,
            cycle=cycle,
            seq=seq,
            lease_w=lease_w,
            committed_w=committed_w,
            worst_w=committed_w,
            headroom_w=lease_w - committed_w,
            high_priority=prio,
            n_units=2,
            frozen=frozen,
        ).to_doc()
    )


class TestConstruction:
    def test_rejects_no_shards(self):
        with pytest.raises(ValueError, match="at least one shard"):
            BudgetArbiter(budget_w=100.0, shards=[])

    def test_rejects_nonpositive_budget(self):
        with pytest.raises(ValueError, match="budget_w"):
            make_arbiter(budget_w=0.0)

    def test_rejects_budget_below_floors(self):
        # 2 shards x 2 units x 30 W floor = 120 W.
        with pytest.raises(ValueError, match="floor"):
            make_arbiter(budget_w=100.0)

    def test_rejects_bad_initial_lease_shape(self):
        with pytest.raises(ValueError, match="initial_leases_w"):
            make_arbiter(initial_leases_w=np.asarray([100.0]))

    def test_initial_leases_proportional_and_registered(self):
        arbiter, _ = make_arbiter()
        np.testing.assert_allclose(arbiter.leases_w, [220.0, 220.0])
        assert len(arbiter.events.of_kind("shard_registered")) == 2


class TestCycle:
    def test_happy_cycle_grants_and_verifies(self):
        arbiter, links = make_arbiter()
        report(links[0], 0, committed_w=180.0)
        report(links[1], 1, committed_w=180.0)
        stats = arbiter.cycle_once(now=0.0)
        assert not np.any(stats.dark)
        assert stats.worst_case_w <= BUDGET * (1 + 1e-9)
        for link in links:
            [doc] = link.take_grants()
            assert doc["seq"] == 1
        assert arbiter.monitor.sweeps_run == 1
        assert not arbiter.monitor.violations

    def test_ack_promotes_applied_view(self):
        arbiter, links = make_arbiter()
        report(links[0], 0)
        report(links[1], 1)
        arbiter.cycle_once(now=0.0)
        # Echo the granted seq from shard 0 only.
        report(links[0], 0, cycle=1, seq=1)
        report(links[1], 1, cycle=1, seq=0)
        arbiter.cycle_once(now=1.0)
        applied = arbiter.envelope.applied_w
        assert applied[0] == arbiter.leases_w[0]
        # In-flight entries at or below the acked seq were dropped.
        assert all(s > 1 for s in arbiter._records[0].sent)

    def test_missing_summary_quarantines_and_skips_grant(self):
        arbiter, links = make_arbiter()
        report(links[0], 0)
        stats = arbiter.cycle_once(now=0.0)
        assert list(stats.dark) == [False, True]
        assert arbiter.dark_shards == (1,)
        events = arbiter.events.of_kind("shard_quarantined")
        assert [e.node_id for e in events] == [1]
        assert links[0].take_grants()
        assert not links[1].take_grants()
        # The dark shard's lease is untouched.
        assert arbiter.leases_w[1] == 220.0

    def test_rejoin_restores_grants(self):
        arbiter, links = make_arbiter()
        report(links[0], 0)
        arbiter.cycle_once(now=0.0)
        links[0].take_grants()
        report(links[0], 0, cycle=1, seq=1)
        report(links[1], 1, cycle=1, seq=0)
        stats = arbiter.cycle_once(now=1.0)
        assert not np.any(stats.dark)
        rejoined = arbiter.events.of_kind("shard_rejoined")
        assert [e.node_id for e in rejoined] == [1]
        assert links[1].take_grants()

    def test_dark_shard_decays_to_dead(self):
        arbiter, links = make_arbiter()
        dead_before = len(arbiter.events.of_kind("shard_dead"))
        for cycle in range(8):
            report(links[0], 0, cycle=cycle, seq=0)
            arbiter.cycle_once(now=float(cycle))
        dead = arbiter.events.of_kind("shard_dead")
        assert len(dead) == dead_before + 1
        assert dead[-1].node_id == 1

    def test_partitioned_grant_reuses_sequence_number(self):
        arbiter, links = make_arbiter()
        report(links[0], 0)
        report(links[1], 1)
        links[1].partition()
        arbiter.cycle_once(now=0.0)
        # Shard 1's summary beat the partition; the grant back did not.
        assert not links[1].take_grants()
        assert arbiter._records[1].seq == 0  # Number never hit the wire.
        links[1].heal()
        report(links[0], 0, cycle=1, seq=1)
        report(links[1], 1, cycle=1, seq=0)
        arbiter.cycle_once(now=1.0)
        [doc] = links[1].take_grants()
        assert doc["seq"] == 1

    def test_budget_conserved_with_dark_shard(self):
        arbiter, links = make_arbiter()
        for cycle in range(4):
            # Shard 1 stays dark; shard 0 runs hot and high priority.
            report(
                links[0],
                0,
                cycle=cycle,
                seq=0,
                committed_w=215.0,
                prio=True,
            )
            stats = arbiter.cycle_once(now=float(cycle))
            assert stats.worst_case_w <= BUDGET * (1 + 1e-9)
            # The dark shard's held power plus every live lease fits.
            assert float(arbiter.leases_w.sum()) <= BUDGET * (1 + 1e-9)
        assert not arbiter.monitor.violations

    def test_timeline_sampled_every_cycle(self):
        arbiter, links = make_arbiter()
        for cycle in range(3):
            report(links[0], 0, cycle=cycle)
            report(links[1], 1, cycle=cycle)
            arbiter.cycle_once(now=float(cycle))
        assert len(arbiter.timeline) == 3 * 2
        assert len(arbiter.timeline.for_shard(0)) == 3


def make_spec(shard_id, link, n_units=2):
    return ArbiterShard(
        shard_id=shard_id,
        link=link,
        n_units=n_units,
        min_cap_w=30.0,
        max_cap_w=165.0,
    )


class TestMembership:
    def test_admit_waits_for_hello_then_carves_lease(self):
        arbiter, links = make_arbiter(
            initial_leases_w=np.asarray([150.0, 150.0])
        )
        link3 = ShardLink()
        arbiter.admit(make_spec(2, link3), now=0.0)
        report(links[0], 0, lease_w=150.0, committed_w=140.0)
        report(links[1], 1, lease_w=150.0, committed_w=140.0)
        arbiter.cycle_once(now=0.0)
        # No HELLO yet: still pending, no grants, not a member.
        assert arbiter.member_ids == (0, 1)
        assert arbiter.pending_ids == (2,)
        assert not link3.take_grants()

        # HELLO arrives: the floor is reserved from the policy budget,
        # live leases shrink, and once the lowered leases are *acked*
        # the proven held power makes room and the shard is admitted.
        link3.send_summary({"type": "hello", "shard": 2, "n_units": 2})
        for cycle in (1, 2, 3):
            report(links[0], 0, cycle=cycle, seq=cycle, lease_w=150.0,
                   committed_w=140.0)
            report(links[1], 1, cycle=cycle, seq=cycle, lease_w=150.0,
                   committed_w=140.0)
            arbiter.cycle_once(now=float(cycle))
            if 2 in arbiter.member_ids:
                break
        assert arbiter.member_ids == (0, 1, 2)
        assert arbiter.pending_ids == ()
        [admitted] = arbiter.events.of_kind("shard_admitted")
        assert admitted.node_id == 2
        [doc] = link3.take_grants()
        assert doc["seq"] == 1
        assert doc["budget_w"] >= 60.0 - 1e-9  # At least the floor.
        assert float(arbiter.leases_w.sum()) <= BUDGET * (1 + 1e-9)
        assert not arbiter.monitor.violations

    def test_admit_rejects_duplicate_and_uncoverable_floor(self):
        arbiter, links = make_arbiter()
        with pytest.raises(ValueError, match="already known"):
            arbiter.admit(make_spec(0, ShardLink()), now=0.0)
        # 2 x 60 W existing floors + an 11-unit floor of 330 W > 440 W.
        with pytest.raises(ValueError, match="floor"):
            arbiter.admit(make_spec(9, ShardLink(), n_units=11), now=0.0)

    def test_drain_reclaims_only_after_final_frozen_summary(self):
        arbiter, links = make_arbiter()
        report(links[0], 0)
        report(links[1], 1)
        arbiter.cycle_once(now=0.0)
        links[1].take_grants()

        arbiter.drain(1, now=0.5)
        [draining] = arbiter.events.of_kind("shard_draining")
        assert draining.node_id == 1

        # Until the final frozen summary arrives, the shard stays a
        # member (its watts stay booked) and receives no grants.
        report(links[0], 0, cycle=1, seq=1)
        arbiter.cycle_once(now=1.0)
        assert arbiter.member_ids == (0, 1)
        assert not arbiter.events.of_kind("shard_drained")
        assert not links[1].take_grants()
        assert float(arbiter.leases_w.sum()) <= BUDGET * (1 + 1e-9)

        report(links[0], 0, cycle=2, seq=1)
        links[1].send_summary(
            ShardSummary(
                shard_id=1,
                cycle=2,
                seq=1,
                lease_w=220.0,
                committed_w=180.0,
                worst_w=180.0,
                headroom_w=40.0,
                high_priority=False,
                n_units=2,
                frozen=True,
                final=True,
            ).to_doc()
        )
        arbiter.cycle_once(now=2.0)
        assert arbiter.member_ids == (0,)
        [drained] = arbiter.events.of_kind("shard_drained")
        assert drained.node_id == 1
        assert arbiter.envelope.n_units == 1
        assert float(arbiter.leases_w.sum()) <= BUDGET * (1 + 1e-9)
        assert not arbiter.monitor.violations

    def test_drain_is_idempotent_and_keeps_last_shard(self):
        arbiter, _ = make_arbiter()
        arbiter.drain(1, now=0.0)
        arbiter.drain(1, now=0.1)  # Idempotent.
        assert len(arbiter.events.of_kind("shard_draining")) == 1
        with pytest.raises(ValueError, match="last active"):
            arbiter.drain(0, now=0.2)


class TestCrashRecovery:
    def test_snapshot_round_trip(self):
        arbiter, links = make_arbiter()
        report(links[0], 0)
        report(links[1], 1)
        arbiter.cycle_once(now=0.0)
        snap = arbiter.snapshot()

        clone, _ = make_arbiter()
        clone.restore(snap)
        assert clone.cycle == arbiter.cycle
        np.testing.assert_array_equal(clone.leases_w, arbiter.leases_w)
        np.testing.assert_array_equal(
            clone.envelope.applied_w, arbiter.envelope.applied_w
        )

    def test_restore_rejects_wrong_version(self):
        arbiter, _ = make_arbiter()
        snap = arbiter.snapshot()
        snap["version"] = 99
        with pytest.raises(ValueError, match="version"):
            arbiter.restore(snap)

    def test_restore_tolerates_membership_drift(self):
        # A v2 snapshot is keyed by shard_id: restoring a payload that
        # lacks a current member (it was admitted after the checkpoint)
        # leaves that member's constructed state untouched instead of
        # failing the whole recovery.
        arbiter, links = make_arbiter()
        report(links[0], 0)
        report(links[1], 1)
        arbiter.cycle_once(now=0.0)
        snap = arbiter.snapshot()
        snap["shards"] = [
            d for d in snap["shards"] if d["shard_id"] == 0
        ]

        clone, _ = make_arbiter()
        clone.restore(snap)
        assert clone.cycle == arbiter.cycle
        assert clone.leases_w[0] == arbiter.leases_w[0]
        assert clone.leases_w[1] == 220.0  # Constructed state kept.

    def test_restore_accepts_v1_positional_payload(self):
        arbiter, links = make_arbiter()
        report(links[0], 0)
        report(links[1], 1)
        arbiter.cycle_once(now=0.0)
        legacy = {
            "version": 1,
            "cycle": arbiter.cycle,
            "budget_w": arbiter.budget_w,
            "shards": [
                {
                    "shard_id": r.spec.shard_id,
                    "lease_w": r.lease_w,
                    "seq": r.seq,
                    "sent": {str(s): v for s, v in r.sent.items()},
                }
                for r in arbiter._records
            ],
            "envelope": arbiter.envelope.snapshot(),
        }
        clone, _ = make_arbiter()
        clone.restore(legacy)
        np.testing.assert_array_equal(clone.leases_w, arbiter.leases_w)
        # v1 stays strict about membership.
        legacy["shards"] = legacy["shards"][:1]
        fresh, _ = make_arbiter()
        with pytest.raises(ValueError, match="shards"):
            fresh.restore(legacy)

    def test_resume_from_checkpoint_store(self, tmp_path):
        store = CheckpointStore(tmp_path / "arbiter")
        arbiter, links = make_arbiter(store=store)
        report(links[0], 0)
        report(links[1], 1)
        arbiter.cycle_once(now=0.0)

        fresh, _ = make_arbiter(store=store)
        assert fresh.resume()
        assert fresh.cycle == 1
        np.testing.assert_array_equal(fresh.leases_w, arbiter.leases_w)

    def test_resume_without_store_or_checkpoint(self, tmp_path):
        arbiter, _ = make_arbiter()
        assert not arbiter.resume()
        empty, _ = make_arbiter(store=CheckpointStore(tmp_path / "empty"))
        assert not empty.resume()

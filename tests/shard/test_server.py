"""ShardServer's lease state machine, standalone and over a live server."""

import numpy as np
import pytest

from repro.cluster.cluster import Cluster
from repro.core.config import ClusterSpec, RaplConfig
from repro.core.constant import ConstantManager
from repro.deploy.client import DeployClient
from repro.recovery.checkpoint import CheckpointStore, CycleJournal
from repro.recovery.controller import RecoverableController
from repro.shard.lease import ArbiterConfig, BudgetLease, ShardLink
from repro.shard.server import ShardServer


def make_shard(tmp_path, config=None, budget_w=220.0):
    manager = ConstantManager()
    manager.bind(
        n_units=2,
        budget_w=budget_w,
        max_cap_w=165.0,
        min_cap_w=30.0,
        dt_s=1.0,
    )
    controller = RecoverableController(
        manager,
        store=CheckpointStore(tmp_path / "ckpt"),
        journal=CycleJournal(tmp_path / "ckpt" / "journal.log"),
        checkpoint_every=2,
    )
    link = ShardLink()
    shard = ShardServer(
        shard_id=0,
        controller=controller,
        link=link,
        config=config or ArbiterConfig(),
    )
    return shard, link


def grant(seq, budget_w, term=6):
    return BudgetLease(
        shard_id=0, seq=seq, budget_w=budget_w, term_cycles=term
    ).to_doc()


class TestLeaseStateMachine:
    def test_initial_state_mirrors_controller(self, tmp_path):
        shard, _ = make_shard(tmp_path)
        assert shard.lease_w == 220.0
        assert shard.lease_seq == 0
        assert not shard.frozen
        assert shard.floor_w == 60.0  # 2 units x 30 W.

    def test_no_grants_returns_false(self, tmp_path):
        shard, _ = make_shard(tmp_path)
        assert not shard.poll_grants(now=0.0)

    def test_newest_grant_wins(self, tmp_path):
        shard, link = make_shard(tmp_path)
        link.send_grant(grant(seq=1, budget_w=200.0))
        link.send_grant(grant(seq=2, budget_w=210.0))
        assert shard.poll_grants(now=0.0)
        assert shard.lease_seq == 2
        assert shard.lease_w == 210.0
        assert shard.controller.budget_w == 210.0
        # Only the applied (newest) grant is an event.
        assert len(shard.events.of_kind("shard_lease_applied")) == 1

    def test_renewal_resets_age_without_reapplying(self, tmp_path):
        shard, link = make_shard(tmp_path)
        link.send_grant(grant(seq=1, budget_w=200.0))
        shard.poll_grants(now=0.0)
        shard.lease_age = 4
        link.send_grant(grant(seq=1, budget_w=200.0))
        assert shard.poll_grants(now=1.0)
        assert shard.lease_age == 0
        assert shard.lease_seq == 1
        assert len(shard.events.of_kind("shard_lease_applied")) == 1

    def test_stale_grant_never_applied(self, tmp_path):
        shard, link = make_shard(tmp_path)
        link.send_grant(grant(seq=3, budget_w=180.0))
        shard.poll_grants(now=0.0)
        link.send_grant(grant(seq=2, budget_w=500.0))
        shard.poll_grants(now=1.0)
        assert shard.lease_w == 180.0
        assert shard.lease_seq == 3

    def test_resume_lease_state_rebuilds_from_controller(self, tmp_path):
        shard, link = make_shard(tmp_path)
        link.send_grant(grant(seq=5, budget_w=150.0))
        shard.poll_grants(now=0.0)
        shard.lease_age = 3
        shard.frozen = True
        shard.resume_lease_state()
        assert shard.lease_w == shard.controller.budget_w == 150.0
        assert shard.lease_seq == 0
        assert shard.lease_age == 0
        assert not shard.frozen

    def test_run_cycle_requires_started_server(self, tmp_path):
        shard, _ = make_shard(tmp_path)
        with pytest.raises(RuntimeError, match="not started"):
            shard.run_cycle(now=0.0)


@pytest.fixture
def live_shard(tmp_path):
    """A one-node shard with a real deploy server and TCP client."""
    cluster = Cluster(
        ClusterSpec(n_nodes=1, sockets_per_node=2),
        RaplConfig(noise_std_w=0.0),
        np.random.default_rng(0),
    )
    shard, link = make_shard(
        tmp_path, config=ArbiterConfig(period_cycles=1, lease_term_cycles=1)
    )
    server = shard.start()
    client = DeployClient(cluster.nodes[0], server.address, dt_s=1.0)
    client.start()
    server.accept_clients(1)
    yield cluster, shard, link
    shard.stop()
    try:
        client.join()
    except RuntimeError:
        pass


class TestExpiryOverLiveServer:
    def test_ephemeral_port_plumbed(self, live_shard):
        _, shard, _ = live_shard
        assert shard.server.address[1] != 0

    def test_lease_expires_and_freezes(self, live_shard):
        _, shard, link = live_shard
        shard.run_cycle(now=0.0)  # age 1, term 1: still live.
        assert not shard.frozen
        shard.run_cycle(now=1.0)  # age 2 > term: expire.
        assert shard.frozen
        assert shard.events.of_kind("shard_lease_expired")
        assert shard.events.of_kind("shard_frozen")
        # The frozen budget never exceeds the lease, never dips below
        # the floor.
        assert shard.floor_w <= shard.controller.budget_w <= shard.lease_w
        # The summary reports the freeze (and the lease it returns to).
        assert shard.summarize(cycle=1)
        [doc] = link.take_summaries()
        assert doc["frozen"] is True
        assert doc["lease_w"] == shard.lease_w

    def test_renewal_unfreezes_and_restores_lease(self, live_shard):
        _, shard, link = live_shard
        shard.run_cycle(now=0.0)
        shard.run_cycle(now=1.0)
        assert shard.frozen
        link.send_grant(grant(seq=1, budget_w=220.0, term=1))
        shard.run_cycle(now=2.0)
        assert not shard.frozen
        assert shard.events.of_kind("shard_unfrozen")
        assert shard.controller.budget_w == 220.0
        assert shard.lease_seq == 1

    def test_summary_blocked_by_partition(self, live_shard):
        _, shard, link = live_shard
        shard.run_cycle(now=0.0)
        link.partition()
        assert not shard.summarize(cycle=0)
        link.heal()
        assert shard.summarize(cycle=1)

"""Sysfs powercap ABI emulation."""

import pytest

from repro.core.config import RaplConfig
from repro.powercap.rapl import RaplDomain
from repro.powercap.sysfs import SysfsPowercap


@pytest.fixture
def fs():
    domains = [
        RaplDomain(f"package-{i}", 165.0, 30.0, RaplConfig(noise_std_w=0.0))
        for i in range(2)
    ]
    return SysfsPowercap(domains)


class TestLayout:
    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="at least one"):
            SysfsPowercap([])

    def test_list_zones(self, fs):
        assert fs.list_zones() == [
            "/sys/class/powercap/intel-rapl:0",
            "/sys/class/powercap/intel-rapl:1",
        ]

    def test_zone_path_out_of_range(self, fs):
        with pytest.raises(FileNotFoundError):
            fs.zone_path(5)


class TestRead:
    def test_name(self, fs):
        assert fs.read("/sys/class/powercap/intel-rapl:1/name") == "package-1"

    def test_energy_uj_integer_string(self, fs):
        value = fs.read("/sys/class/powercap/intel-rapl:0/energy_uj")
        assert value == str(int(value))

    def test_power_limit_uw(self, fs):
        value = fs.read(
            "/sys/class/powercap/intel-rapl:0/constraint_0_power_limit_uw"
        )
        assert int(value) == 165_000_000

    def test_max_power_uw(self, fs):
        value = fs.read(
            "/sys/class/powercap/intel-rapl:0/constraint_0_max_power_uw"
        )
        assert int(value) == 165_000_000

    def test_constraint_name(self, fs):
        assert (
            fs.read("/sys/class/powercap/intel-rapl:0/constraint_0_name")
            == "long_term"
        )

    def test_max_energy_range(self, fs):
        value = fs.read(
            "/sys/class/powercap/intel-rapl:0/max_energy_range_uj"
        )
        assert int(value) == RaplConfig().counter_wrap_uj

    @pytest.mark.parametrize(
        "path",
        [
            "/sys/class/powercap/intel-rapl:0/bogus",
            "/sys/class/powercap/intel-rapl:9/name",
            "/sys/class/powercap/intel-rapl:x/name",
            "/sys/class/powercap/intel-rapl:0",
            "/other/path",
        ],
    )
    def test_unknown_paths(self, fs, path):
        with pytest.raises(FileNotFoundError):
            fs.read(path)


class TestWrite:
    def test_write_power_limit(self, fs):
        fs.write(
            "/sys/class/powercap/intel-rapl:0/constraint_0_power_limit_uw",
            "90000000",
        )
        assert fs.domains[0].cap_w == pytest.approx(90.0)

    def test_write_clamps_like_kernel(self, fs):
        fs.write(
            "/sys/class/powercap/intel-rapl:0/constraint_0_power_limit_uw",
            "999000000",
        )
        assert fs.domains[0].cap_w == pytest.approx(165.0)

    def test_write_readonly_attr(self, fs):
        with pytest.raises(PermissionError):
            fs.write("/sys/class/powercap/intel-rapl:0/energy_uj", "0")

    def test_write_unknown_attr(self, fs):
        with pytest.raises(FileNotFoundError):
            fs.write("/sys/class/powercap/intel-rapl:0/bogus", "1")

    def test_write_bad_value(self, fs):
        with pytest.raises(ValueError):
            fs.write(
                "/sys/class/powercap/intel-rapl:0/"
                "constraint_0_power_limit_uw",
                "ninety",
            )

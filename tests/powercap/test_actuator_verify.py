"""Verified actuation: read-back checks, bounded retry, reset, snapshot."""

import numpy as np
import pytest

from repro.core.config import RaplConfig
from repro.powercap.actuator import CapActuator
from repro.powercap.faults import FlakyDomain
from repro.powercap.rapl import RaplDomain


def healthy_domains(n=2):
    return [
        RaplDomain(f"d{i}", 165.0, 30.0, RaplConfig(noise_std_w=0.0))
        for i in range(n)
    ]


def flaky_domains(n=2, drop_prob=1.0, max_drops=None, seed=0):
    return [
        FlakyDomain(
            dom, drop_prob, np.random.default_rng(seed + i), max_drops
        )
        for i, dom in enumerate(healthy_domains(n))
    ]


class TestVerify:
    def test_healthy_writes_need_no_retry(self):
        act = CapActuator(healthy_domains(), verify=True)
        act.issue(np.array([100.0, 120.0]))
        assert act.retries == 0
        assert act.verify_failures == 0
        assert act.events == []

    def test_transient_failure_retried_and_reported(self):
        doms = flaky_domains(drop_prob=1.0, max_drops=1)
        act = CapActuator(doms, verify=True, max_retries=3)
        act.issue(np.array([100.0, 120.0]))
        # Each domain dropped its first write, then the retry landed.
        assert doms[0].cap_w == pytest.approx(100.0)
        assert doms[1].cap_w == pytest.approx(120.0)
        assert act.retries == 2
        assert act.verify_failures == 0
        kinds = [kind for kind, _, _ in act.events]
        assert kinds == ["actuation_retried", "actuation_retried"]

    def test_exhaustion_reported_never_raised(self):
        doms = flaky_domains(n=1, drop_prob=1.0)  # Every write fails.
        act = CapActuator(doms, verify=True, max_retries=2)
        act.issue(np.array([100.0]))  # Must not raise.
        assert act.verify_failures == 1
        assert act.retries == 2
        (kind, unit, detail) = act.events[0]
        assert kind == "actuation_retry_exhausted"
        assert unit == 0
        assert "100.000" in detail

    def test_expected_value_is_the_sysfs_clamp(self):
        # A request outside the accepted range reads back clamped; that
        # is a *correct* write and must not trigger retries.
        act = CapActuator(healthy_domains(n=1), verify=True)
        act.issue(np.array([500.0]))
        assert act.retries == 0 and act.verify_failures == 0

    def test_unverified_mode_never_retries(self):
        doms = flaky_domains(n=1, drop_prob=1.0)
        act = CapActuator(doms, verify=False)
        act.issue(np.array([100.0]))
        assert act.retries == 0 and act.events == []

    def test_backoff_doubles_but_stays_bounded(self, monkeypatch):
        sleeps = []
        monkeypatch.setattr(
            "repro.powercap.actuator.time.sleep", sleeps.append
        )
        doms = flaky_domains(n=1, drop_prob=1.0)
        act = CapActuator(doms, verify=True, max_retries=3, backoff_s=0.01)
        act.issue(np.array([100.0]))
        assert sleeps == [0.01, 0.02, 0.04]


class TestPipelineReset:
    def test_pending_exposes_queued_commands(self):
        act = CapActuator(healthy_domains(), delay_steps=2)
        act.issue(np.array([100.0, 120.0]))
        act.issue(np.array([90.0, 110.0]))
        pending = act.pending
        assert [p.tolist() for p in pending] == [
            [100.0, 120.0],
            [90.0, 110.0],
        ]
        pending[0][0] = -1.0  # Copies: mutating must not reach the queue.
        assert act.pending[0][0] == 100.0

    def test_reset_drops_stale_inflight_commands(self):
        # Regression: without reset, commands queued by a previous run
        # would actuate into the next run's first intervals.
        doms = healthy_domains()
        act = CapActuator(doms, delay_steps=1)
        act.issue(np.array([50.0, 50.0]))  # Still queued ("run 1" ends).
        act.reset()
        assert act.pending == []
        act.issue(np.array([100.0, 120.0]))  # "Run 2" starts clean.
        act.issue(np.array([100.0, 120.0]))
        assert doms[0].cap_w == pytest.approx(100.0)  # Never saw 50 W.

    def test_reset_clears_counters_and_events(self):
        act = CapActuator(flaky_domains(n=1, drop_prob=1.0), verify=True)
        act.issue(np.array([100.0]))
        assert act.verify_failures == 1 and act.events
        act.reset()
        assert act.retries == 0
        assert act.verify_failures == 0
        assert act.events == []
        assert act.commands_applied == 0

    def test_snapshot_restore_round_trips_pipeline(self):
        act = CapActuator(healthy_domains(), delay_steps=2)
        act.issue(np.array([100.0, 120.0]))
        act.issue(np.array([90.0, 110.0]))
        state = act.snapshot()

        fresh = CapActuator(healthy_domains(), delay_steps=2)
        fresh.restore(state)
        assert [p.tolist() for p in fresh.pending] == [
            [100.0, 120.0],
            [90.0, 110.0],
        ]
        assert fresh.commands_applied == act.commands_applied

    def test_restore_rejects_wrong_width(self):
        act = CapActuator(healthy_domains(n=2), delay_steps=1)
        act.issue(np.array([100.0, 120.0]))
        narrow = CapActuator(healthy_domains(n=1), delay_steps=1)
        with pytest.raises(ValueError, match="shape"):
            narrow.restore(act.snapshot())

"""Cap actuator: pipeline delay, quantization, change accounting."""

import numpy as np
import pytest

from repro.core.config import RaplConfig
from repro.powercap.actuator import CapActuator
from repro.powercap.rapl import RaplDomain


def domains(n=2):
    return [
        RaplDomain(f"d{i}", 165.0, 30.0, RaplConfig(noise_std_w=0.0))
        for i in range(n)
    ]


class TestImmediate:
    def test_caps_applied_at_once(self):
        doms = domains()
        act = CapActuator(doms, delay_steps=0)
        changed = act.issue(np.array([100.0, 120.0]))
        assert changed == 2
        assert doms[0].cap_w == pytest.approx(100.0)
        assert doms[1].cap_w == pytest.approx(120.0)

    def test_unchanged_caps_not_counted(self):
        doms = domains()
        act = CapActuator(doms)
        act.issue(np.array([100.0, 120.0]))
        changed = act.issue(np.array([100.0, 120.0]))
        assert changed == 0

    def test_commands_counted(self):
        act = CapActuator(domains())
        act.issue(np.array([100.0, 120.0]))
        act.issue(np.array([90.0, 120.0]))
        assert act.commands_applied == 4


class TestDelay:
    def test_one_step_delay(self):
        doms = domains()
        act = CapActuator(doms, delay_steps=1)
        changed = act.issue(np.array([100.0, 100.0]))
        assert changed == 0
        assert doms[0].cap_w == pytest.approx(165.0)  # Not yet applied.
        act.issue(np.array([90.0, 90.0]))
        assert doms[0].cap_w == pytest.approx(100.0)  # First command lands.

    def test_flush_applies_queue(self):
        doms = domains()
        act = CapActuator(doms, delay_steps=2)
        act.issue(np.array([100.0, 100.0]))
        act.issue(np.array([90.0, 90.0]))
        act.flush()
        assert doms[0].cap_w == pytest.approx(90.0)

    def test_rejects_negative_delay(self):
        with pytest.raises(ValueError, match="delay_steps"):
            CapActuator(domains(), delay_steps=-1)


class TestValidation:
    def test_rejects_empty_domains(self):
        with pytest.raises(ValueError, match="at least one"):
            CapActuator([])

    def test_rejects_wrong_shape(self):
        act = CapActuator(domains(2))
        with pytest.raises(ValueError, match="shape"):
            act.issue(np.zeros(3))

    def test_quantizes_to_microwatts(self):
        doms = domains(1)
        act = CapActuator(doms)
        act.issue(np.array([100.123456789]))
        assert doms[0].cap_w == pytest.approx(100.123457, abs=1e-6)

"""RAPL domain: cap enforcement, lag, energy counter, meter."""

import numpy as np
import pytest

from repro.core.config import RaplConfig
from repro.powercap.rapl import PowerMeter, RaplDomain

QUIET = RaplConfig(noise_std_w=0.0, lag_tau_s=0.8)


def domain(**kwargs):
    defaults = dict(
        name="pkg", max_power_w=165.0, min_power_w=30.0, config=QUIET,
        initial_power_w=12.0,
    )
    defaults.update(kwargs)
    return RaplDomain(**defaults)


class TestConstruction:
    def test_rejects_nonpositive_max(self):
        with pytest.raises(ValueError, match="max_power_w"):
            RaplDomain("x", max_power_w=0.0)

    def test_rejects_min_above_max(self):
        with pytest.raises(ValueError, match="min_power_w"):
            RaplDomain("x", max_power_w=100.0, min_power_w=150.0)

    def test_rejects_initial_above_max(self):
        with pytest.raises(ValueError, match="initial_power_w"):
            RaplDomain("x", max_power_w=100.0, initial_power_w=150.0)

    def test_cap_starts_at_max(self):
        assert domain().cap_w == 165.0


class TestCapSetting:
    def test_clamps_to_range(self):
        d = domain()
        assert d.set_cap_w(500.0) == 165.0
        assert d.set_cap_w(1.0) == 30.0
        assert d.set_cap_w(110.0) == 110.0

    def test_rejects_nan(self):
        with pytest.raises(ValueError, match="finite"):
            domain().set_cap_w(float("nan"))


class TestPhysics:
    def test_power_approaches_demand(self):
        d = domain()
        for _ in range(10):
            d.step(150.0, 1.0)
        assert d.power_w == pytest.approx(150.0, abs=1.0)

    def test_power_never_exceeds_cap(self):
        d = domain()
        d.set_cap_w(90.0)
        for _ in range(10):
            p = d.step(160.0, 1.0)
            assert p <= 90.0 + 1e-12

    def test_lag_slows_transition(self):
        d = domain()
        p1 = d.step(160.0, 1.0)
        assert 12.0 < p1 < 160.0  # Mid-transition after one tau-ish step.

    def test_faster_with_longer_dt(self):
        slow = domain()
        fast = domain()
        p_slow = slow.step(160.0, 0.5)
        p_fast = fast.step(160.0, 3.0)
        assert p_fast > p_slow

    def test_power_decays_when_demand_drops(self):
        d = domain()
        for _ in range(10):
            d.step(150.0, 1.0)
        for _ in range(10):
            d.step(20.0, 1.0)
        assert d.power_w == pytest.approx(20.0, abs=1.0)

    def test_rejects_negative_demand(self):
        with pytest.raises(ValueError, match="demand_w"):
            domain().step(-1.0, 1.0)

    def test_rejects_nonpositive_dt(self):
        with pytest.raises(ValueError, match="dt_s"):
            domain().step(100.0, 0.0)


class TestEnergyCounter:
    def test_counter_monotonic_without_wrap(self):
        d = domain()
        last = d.read_energy_uj()
        for _ in range(20):
            d.step(150.0, 1.0)
            now = d.read_energy_uj()
            assert now >= last
            last = now

    def test_counter_integrates_power(self):
        d = domain()
        for _ in range(40):
            d.step(100.0, 1.0)
        start = d.read_energy_uj()
        d.step(100.0, 1.0)  # Steady at 100 W for 1 s = 100 J = 1e8 uJ.
        assert d.read_energy_uj() - start == pytest.approx(1e8, rel=0.01)

    def test_counter_wraps(self):
        # Wrap chosen to not divide the per-step energy so the modulo moves.
        cfg = RaplConfig(noise_std_w=0.0, counter_wrap_uj=77_777_777)
        d = RaplDomain("x", 165.0, config=cfg, initial_power_w=100.0)
        seen_wrap = False
        last = d.read_energy_uj()
        for _ in range(20):
            d.step(100.0, 1.0)  # 1e8 uJ per step > wrap.
            now = d.read_energy_uj()
            assert 0 <= now < 77_777_777
            if now < last:
                seen_wrap = True
            last = now
        assert seen_wrap


class TestPowerMeter:
    def test_meter_reads_average_power(self):
        d = domain()
        meter = PowerMeter(d, np.random.default_rng(0))
        for _ in range(30):
            d.step(120.0, 1.0)
            meter.read_power_w(1.0)
        d.step(120.0, 1.0)
        assert meter.read_power_w(1.0) == pytest.approx(120.0, abs=1.0)

    def test_meter_survives_counter_wrap(self):
        cfg = RaplConfig(noise_std_w=0.0, counter_wrap_uj=200_000_000)
        d = RaplDomain("x", 165.0, config=cfg, initial_power_w=150.0)
        meter = PowerMeter(d, np.random.default_rng(0))
        readings = []
        for _ in range(10):  # 1.5e8 uJ/step wraps every other step.
            d.step(150.0, 1.0)
            readings.append(meter.read_power_w(1.0))
        assert all(abs(r - 150.0) < 2.0 for r in readings)

    def test_noise_applied(self):
        cfg = RaplConfig(noise_std_w=3.0)
        d = RaplDomain("x", 165.0, config=cfg, initial_power_w=100.0)
        meter = PowerMeter(d, np.random.default_rng(1))
        readings = []
        for _ in range(200):
            d.step(100.0, 1.0)
            readings.append(meter.read_power_w(1.0))
        assert 1.5 < np.std(readings[20:]) < 4.5

    def test_reading_never_negative(self):
        cfg = RaplConfig(noise_std_w=50.0)
        d = RaplDomain("x", 165.0, config=cfg, initial_power_w=5.0)
        meter = PowerMeter(d, np.random.default_rng(2))
        for _ in range(50):
            d.step(5.0, 1.0)
            assert meter.read_power_w(1.0) >= 0.0

    def test_rejects_nonpositive_dt(self):
        meter = PowerMeter(domain(), np.random.default_rng(0))
        with pytest.raises(ValueError, match="dt_s"):
            meter.read_power_w(0.0)

"""Fault injection and manager robustness under corrupted telemetry."""

import numpy as np
import pytest

from repro.core.config import RaplConfig
from repro.core.managers import create_manager
from repro.powercap.faults import FaultConfig, FaultyMeter
from repro.powercap.rapl import PowerMeter, RaplDomain


def make_meter(seed=0):
    domain = RaplDomain(
        "pkg", 165.0, 30.0, RaplConfig(noise_std_w=0.0),
        initial_power_w=100.0,
    )
    return domain, PowerMeter(domain, np.random.default_rng(seed))


class TestFaultConfig:
    def test_rejects_bad_probability(self):
        with pytest.raises(ValueError, match="stuck_prob"):
            FaultConfig(stuck_prob=1.5)

    def test_rejects_sum_above_one(self):
        with pytest.raises(ValueError, match="sum"):
            FaultConfig(stuck_prob=0.6, dropout_prob=0.6)

    def test_rejects_bad_gain(self):
        with pytest.raises(ValueError, match="spike_gain"):
            FaultConfig(spike_gain=0.0)


class TestFaultyMeter:
    def test_no_faults_passthrough(self):
        domain, meter = make_meter()
        faulty = FaultyMeter(meter, FaultConfig(), np.random.default_rng(1))
        domain.step(100.0, 1.0)
        assert faulty.read_power_w(1.0) == pytest.approx(100.0, abs=0.5)
        assert faulty.faults_injected == 0

    def test_dropout_returns_zero(self):
        domain, meter = make_meter()
        faulty = FaultyMeter(
            meter, FaultConfig(dropout_prob=1.0), np.random.default_rng(1)
        )
        domain.step(100.0, 1.0)
        assert faulty.read_power_w(1.0) == 0.0
        assert faulty.faults_injected == 1

    def test_stuck_repeats_previous(self):
        domain, meter = make_meter()
        cfg = FaultConfig(stuck_prob=0.0)
        faulty = FaultyMeter(meter, cfg, np.random.default_rng(1))
        domain.step(100.0, 1.0)
        first = faulty.read_power_w(1.0)
        faulty.config = FaultConfig(stuck_prob=1.0)  # type: ignore[misc]
        domain.step(150.0, 1.0)
        assert faulty.read_power_w(1.0) == first

    def test_spike_scales_reading(self):
        domain, meter = make_meter()
        faulty = FaultyMeter(
            meter,
            FaultConfig(spike_prob=1.0, spike_gain=2.0),
            np.random.default_rng(1),
        )
        domain.step(100.0, 1.0)
        assert faulty.read_power_w(1.0) == pytest.approx(200.0, abs=1.0)

    def test_fault_rate_statistical(self):
        domain, meter = make_meter()
        faulty = FaultyMeter(
            meter,
            FaultConfig(dropout_prob=0.2),
            np.random.default_rng(2),
        )
        for _ in range(500):
            domain.step(100.0, 1.0)
            faulty.read_power_w(1.0)
        assert 60 < faulty.faults_injected < 140  # ~100 expected.


class TestManagerRobustness:
    """Managers fed corrupted telemetry must keep their invariants."""

    @pytest.mark.parametrize("manager_name", ["slurm", "dps", "dps+"])
    def test_budget_held_under_faults(self, manager_name):
        mgr = create_manager(manager_name)
        mgr.bind(4, 440.0, 165.0, 30.0, rng=np.random.default_rng(0))
        rng = np.random.default_rng(3)
        fault_rng = np.random.default_rng(4)
        caps = np.asarray(mgr.caps)
        for _ in range(60):
            demand = rng.uniform(20, 160, 4)
            power = np.minimum(demand, caps)
            # Corrupt ~20 % of readings with dropouts and spikes.
            roll = fault_rng.random(4)
            power = np.where(roll < 0.1, 0.0, power)
            power = np.where(
                (roll >= 0.1) & (roll < 0.2),
                np.minimum(power * 3.0, 400.0),
                power,
            )
            caps = mgr.step(power)
            assert np.all(np.isfinite(caps))
            assert caps.sum() <= 440.0 + 1e-6

    def test_dps_recovers_after_fault_burst(self):
        """A stuck-at-zero burst on one unit must not permanently strand
        its cap: once readings return, the unit regains budget."""
        mgr = create_manager("dps")
        mgr.bind(2, 240.0, 165.0, 0.0, rng=np.random.default_rng(0))
        caps = np.asarray(mgr.caps)
        demand = np.array([150.0, 150.0])
        # Healthy warm-up.
        for _ in range(10):
            caps = mgr.step(np.minimum(demand, caps))
        # Unit 0's meter reads zero for 10 steps (dropout burst).
        for _ in range(10):
            power = np.minimum(demand, caps)
            power[0] = 0.0
            caps = mgr.step(power)
        assert caps[0] < 60.0  # Budget was reclaimed, as it should be.
        # Readings return; unit 0's rising power re-earns its share.
        for _ in range(25):
            caps = mgr.step(np.minimum(demand, caps))
        assert caps[0] > 100.0

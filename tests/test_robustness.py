"""Seed robustness and randomized end-to-end invariants.

The paper's conclusions would be worthless if they held for one lucky
seed; these tests re-run the core comparison across seeds and drive the
full engine with randomized synthetic workloads, asserting the invariants
that must hold regardless of the draw.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.cluster import Cluster
from repro.cluster.simulator import Assignment, Simulation
from repro.core.config import ClusterSpec, SimulationConfig
from repro.core.managers import create_manager
from repro.experiments.harness import ExperimentConfig, ExperimentHarness
from repro.powercap.faults import FaultConfig, FaultyMeter
from repro.workloads.synthetic import random_workload

SPEC = ClusterSpec(n_nodes=4, sockets_per_node=2)


class TestSeedRobustness:
    """The DPS > SLURM ordering is not a seed lottery."""

    @pytest.mark.parametrize("seed", [3, 17, 123])
    def test_contended_ordering_across_seeds(self, seed):
        cfg = ExperimentConfig(
            cluster=SPEC,
            sim=SimulationConfig(time_scale=0.2, max_steps=200_000),
            repeats=1,
            seed=seed,
        )
        harness = ExperimentHarness(cfg)
        slurm = harness.evaluate_pair("bayes", "cg", "slurm")
        dps = harness.evaluate_pair("bayes", "cg", "dps")
        assert dps.hmean_speedup > slurm.hmean_speedup
        assert dps.fairness > slurm.fairness


class TestRandomizedEndToEnd:
    @given(seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=8, deadline=None)
    def test_random_pair_completes_with_invariants(self, seed):
        """Any structurally valid workload pair simulates to completion
        with the budget respected, under DPS."""
        cluster = Cluster(SPEC)
        a = random_workload(seed, max_phase_s=40.0)
        rng = np.random.default_rng(seed)
        b = random_workload(int(rng.integers(0, 2**31)), max_phase_s=40.0)
        sim = Simulation(
            cluster_spec=SPEC,
            manager=create_manager("dps"),
            assignments=[
                Assignment(spec=a, unit_ids=cluster.half_unit_ids(0)),
                Assignment(spec=b, unit_ids=cluster.half_unit_ids(1)),
            ],
            target_runs=1,
            sim_config=SimulationConfig(
                time_scale=0.5, max_steps=30_000, inter_run_gap_s=2.0
            ),
            seed=seed,
        )
        result = sim.run()
        assert not result.truncated
        assert result.max_caps_sum_w <= SPEC.budget_w * (1 + 1e-6)
        assert all(d > 0 for d in result.durations.values())

    @given(seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=5, deadline=None)
    def test_random_pair_deterministic(self, seed):
        """Identical seeds give identical results for random workloads."""

        def run():
            cluster = Cluster(SPEC)
            sim = Simulation(
                cluster_spec=SPEC,
                manager=create_manager("slurm"),
                assignments=[
                    Assignment(
                        spec=random_workload(seed, max_phase_s=30.0),
                        unit_ids=cluster.half_unit_ids(0),
                    )
                ],
                target_runs=1,
                sim_config=SimulationConfig(
                    time_scale=0.5, max_steps=30_000, inter_run_gap_s=2.0
                ),
                seed=seed,
            )
            return sim.run().durations

        assert run() == run()


class TestResilientRecovery:
    """The resilience acceptance scenario: heavy measurement faults must
    never break the budget, and once they clear the resilient-wrapped DPS
    must recover to within 2% of a fault-free run."""

    FAULTS = FaultConfig(stuck_prob=0.05, dropout_prob=0.05, spike_prob=0.02)
    FAULT_CYCLES = 150
    TOTAL_CYCLES = 300
    WINDOW = 50  # Trailing cycles scored after the faults clear.

    def _drive(self, inject_faults):
        """A closed control loop over the cluster physics; faults (when
        injected) corrupt every meter for the first FAULT_CYCLES cycles,
        then the healthy meters are restored."""
        cluster = Cluster(SPEC, rng=np.random.default_rng(21))
        manager = create_manager("resilient")
        manager.bind(
            cluster.n_units,
            cluster.budget_w,
            SPEC.tdp_w,
            SPEC.min_cap_w,
            rng=np.random.default_rng(5),
        )
        # A hungry half and an idle-ish half, so DPS has power to shift
        # and the post-fault allocation is a real decision.
        demand = np.where(
            np.arange(cluster.n_units) < cluster.n_units // 2, 150.0, 60.0
        )
        healthy_meters = [s.meter for s in cluster.sockets]
        if inject_faults:
            fault_rngs = np.random.default_rng(99).spawn(cluster.n_units)
            for sock, frng in zip(cluster.sockets, fault_rngs):
                sock.meter = FaultyMeter(sock.meter, self.FAULTS, frng)

        power_trace = np.empty((self.TOTAL_CYCLES, cluster.n_units))
        for cycle in range(self.TOTAL_CYCLES):
            if inject_faults and cycle == self.FAULT_CYCLES:
                for sock, meter in zip(cluster.sockets, healthy_meters):
                    sock.meter = meter  # The fault episode ends.
            true_power = cluster.step_physics(demand, 1.0)
            readings = cluster.read_powers_w(1.0)
            caps = manager.step(readings)
            assert caps.sum() <= cluster.budget_w * (1 + 1e-9), (
                f"budget violated at cycle {cycle}"
            )
            for dom, cap in zip(cluster.domains, caps):
                dom.set_cap_w(float(cap))
            power_trace[cycle] = true_power
        return power_trace

    @staticmethod
    def _hmean_progress(trace):
        """Harmonic mean across units of window-mean delivered power —
        the speedup proxy (progress tracks delivered power in the
        perf model, and hmean is the paper's pairing metric)."""
        unit_means = trace.mean(axis=0)
        return len(unit_means) / np.sum(1.0 / unit_means)

    def test_budget_held_and_recovery_within_2pct(self):
        faulty = self._drive(inject_faults=True)
        clean = self._drive(inject_faults=False)
        h_faulty = self._hmean_progress(faulty[-self.WINDOW:])
        h_clean = self._hmean_progress(clean[-self.WINDOW:])
        assert abs(h_faulty - h_clean) / h_clean <= 0.02

"""Seed robustness and randomized end-to-end invariants.

The paper's conclusions would be worthless if they held for one lucky
seed; these tests re-run the core comparison across seeds and drive the
full engine with randomized synthetic workloads, asserting the invariants
that must hold regardless of the draw.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.cluster import Cluster
from repro.cluster.simulator import Assignment, Simulation
from repro.core.config import ClusterSpec, SimulationConfig
from repro.core.managers import create_manager
from repro.experiments.harness import ExperimentConfig, ExperimentHarness
from repro.workloads.synthetic import random_workload

SPEC = ClusterSpec(n_nodes=4, sockets_per_node=2)


class TestSeedRobustness:
    """The DPS > SLURM ordering is not a seed lottery."""

    @pytest.mark.parametrize("seed", [3, 17, 123])
    def test_contended_ordering_across_seeds(self, seed):
        cfg = ExperimentConfig(
            cluster=SPEC,
            sim=SimulationConfig(time_scale=0.2, max_steps=200_000),
            repeats=1,
            seed=seed,
        )
        harness = ExperimentHarness(cfg)
        slurm = harness.evaluate_pair("bayes", "cg", "slurm")
        dps = harness.evaluate_pair("bayes", "cg", "dps")
        assert dps.hmean_speedup > slurm.hmean_speedup
        assert dps.fairness > slurm.fairness


class TestRandomizedEndToEnd:
    @given(seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=8, deadline=None)
    def test_random_pair_completes_with_invariants(self, seed):
        """Any structurally valid workload pair simulates to completion
        with the budget respected, under DPS."""
        cluster = Cluster(SPEC)
        a = random_workload(seed, max_phase_s=40.0)
        rng = np.random.default_rng(seed)
        b = random_workload(int(rng.integers(0, 2**31)), max_phase_s=40.0)
        sim = Simulation(
            cluster_spec=SPEC,
            manager=create_manager("dps"),
            assignments=[
                Assignment(spec=a, unit_ids=cluster.half_unit_ids(0)),
                Assignment(spec=b, unit_ids=cluster.half_unit_ids(1)),
            ],
            target_runs=1,
            sim_config=SimulationConfig(
                time_scale=0.5, max_steps=30_000, inter_run_gap_s=2.0
            ),
            seed=seed,
        )
        result = sim.run()
        assert not result.truncated
        assert result.max_caps_sum_w <= SPEC.budget_w * (1 + 1e-6)
        assert all(d > 0 for d in result.durations.values())

    @given(seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=5, deadline=None)
    def test_random_pair_deterministic(self, seed):
        """Identical seeds give identical results for random workloads."""

        def run():
            cluster = Cluster(SPEC)
            sim = Simulation(
                cluster_spec=SPEC,
                manager=create_manager("slurm"),
                assignments=[
                    Assignment(
                        spec=random_workload(seed, max_phase_s=30.0),
                        unit_ids=cluster.half_unit_ids(0),
                    )
                ],
                target_runs=1,
                sim_config=SimulationConfig(
                    time_scale=0.5, max_steps=30_000, inter_run_gap_s=2.0
                ),
                seed=seed,
            )
            return sim.run().durations

        assert run() == run()

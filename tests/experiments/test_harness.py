"""Experiment harness: references, baselines, normalization, caching."""

import pytest

from repro.experiments.harness import (
    ExperimentConfig,
    ExperimentHarness,
    PairOutcome,
)


class TestConfig:
    def test_derive_seed_deterministic(self):
        cfg = ExperimentConfig(seed=5)
        assert cfg.derive_seed("a", "b") == cfg.derive_seed("a", "b")
        assert cfg.derive_seed("a", "b") != cfg.derive_seed("b", "a")
        assert (
            ExperimentConfig(seed=6).derive_seed("a", "b")
            != cfg.derive_seed("a", "b")
        )

    def test_make_manager_applies_configs(self):
        from repro.core.config import DPSConfig

        cfg = ExperimentConfig(dps=DPSConfig(use_kalman=False))
        mgr = cfg.make_manager("dps")
        assert not mgr.config.use_kalman  # type: ignore[attr-defined]

    def test_make_manager_baselines(self):
        cfg = ExperimentConfig()
        assert cfg.make_manager("constant").name == "constant"
        assert cfg.make_manager("oracle").name == "oracle"


class TestReferences:
    def test_uncapped_reference_cached(self, fast_config):
        harness = ExperimentHarness(fast_config)
        first = harness.uncapped_reference("sort")
        second = harness.uncapped_reference("sort")
        assert first is second
        assert first.mean_power_w > 0
        assert first.mean_duration_s > 0

    def test_constant_baseline_cached(self, fast_config):
        harness = ExperimentHarness(fast_config)
        b1 = harness.constant_baseline("sort", "wordcount")
        b2 = harness.constant_baseline("sort", "wordcount")
        assert b1 is b2
        assert b1.manager == "constant"


class TestRunPair:
    def test_outcome_fields(self, fast_config):
        harness = ExperimentHarness(fast_config)
        outcome = harness.run_pair("sort", "wordcount", "slurm")
        assert isinstance(outcome, PairOutcome)
        assert len(outcome.times_a_s) >= fast_config.repeats
        assert outcome.max_caps_sum_w <= (
            fast_config.cluster.budget_w * (1 + 1e-6)
        )

    def test_telemetry_variant(self, fast_config):
        harness = ExperimentHarness(fast_config)
        outcome, result = harness.run_pair(
            "sort", "wordcount", "slurm", record_telemetry=True
        )
        assert result.telemetry is not None
        assert isinstance(outcome, PairOutcome)


class TestTruncation:
    def test_step_limit_raises_with_guidance(self, fast_config):
        import dataclasses

        from repro.core.config import SimulationConfig

        cramped = dataclasses.replace(
            fast_config,
            sim=SimulationConfig(
                time_scale=0.05, max_steps=3, inter_run_gap_s=2.0
            ),
        )
        harness = ExperimentHarness(cramped)
        with pytest.raises(RuntimeError, match="max_steps"):
            harness.run_pair("kmeans", "gmm", "constant")


class TestEvaluatePair:
    def test_constant_is_unity(self, fast_config):
        harness = ExperimentHarness(fast_config)
        ev = harness.evaluate_pair("sort", "wordcount", "constant")
        assert ev.speedup_a == pytest.approx(1.0)
        assert ev.speedup_b == pytest.approx(1.0)
        assert ev.hmean_speedup == pytest.approx(1.0)

    def test_metrics_in_range(self, fast_config):
        harness = ExperimentHarness(fast_config)
        ev = harness.evaluate_pair("sort", "wordcount", "dps")
        assert 0 <= ev.satisfaction_a <= 1
        assert 0 <= ev.satisfaction_b <= 1
        assert 0 <= ev.fairness <= 1
        assert ev.speedup_a > 0 and ev.speedup_b > 0

    def test_evaluate_managers_keys(self, fast_config):
        harness = ExperimentHarness(fast_config)
        out = harness.evaluate_managers(
            "sort", "wordcount", ("slurm", "dps")
        )
        assert set(out) == {"slurm", "dps"}

"""Figure generators on fast configurations."""

import numpy as np
import pytest

from repro.experiments.figures import (
    figure1,
    figure2,
    figure4,
    figure5a,
    figure5b,
    figure6,
    figure7,
)
from repro.experiments.harness import ExperimentHarness


class TestFigure1:
    def test_structure(self):
        data = figure1()
        assert data.timesteps == (0, 1, 2, 3, 4)
        assert set(data.caps) == {"constant", "oracle", "slurm", "dps"}
        for caps in data.caps.values():
            assert caps.shape == (5, 2)

    def test_constant_never_moves(self):
        data = figure1()
        np.testing.assert_allclose(data.caps["constant"], 120.0)

    def test_budget_respected_by_all(self):
        data = figure1()
        for name, caps in data.caps.items():
            assert np.all(caps.sum(axis=1) <= data.budget_w + 1e-6), name

    def test_stateless_starves_late_riser(self):
        """The figure's core story at T4."""
        data = figure1()
        slurm_t4 = data.caps["slurm"][4]
        dps_t4 = data.caps["dps"][4]
        # SLURM: node 1 far below its fair 120 W share.
        assert slurm_t4[1] < 105.0
        # DPS: both nodes near the even split, like the oracle.
        assert abs(dps_t4[0] - dps_t4[1]) < 5.0
        assert dps_t4[1] > 110.0

    def test_oracle_tracks_demand(self):
        data = figure1()
        oracle_t1 = data.caps["oracle"][1]
        assert oracle_t1[0] > 150.0  # Node 0's surge covered at T1.


class TestFigure2:
    def test_traces_generated(self, fast_config):
        traces = figure2(workloads=("lr",), config=fast_config)
        t, p = traces["lr"]
        assert t.shape == p.shape
        assert p.max() > 110.0  # LR's bursts visible uncapped.
        assert p.min() < 90.0


class TestBarFigures:
    @pytest.fixture
    def harness(self, fast_config):
        return ExperimentHarness(fast_config)

    def test_figure4_structure(self, harness):
        pairs = [("bayes", "sort"), ("bayes", "wordcount"), ("lr", "sort")]
        data = figure4(harness, managers=("slurm", "dps"), pairs=pairs)
        assert data.labels == ("bayes", "lr")
        assert set(data.series) == {"slurm", "dps"}
        assert len(data.series["dps"]) == 2
        assert len(data.pair_values["dps"]) == 3

    def test_figure5a_structure(self, harness):
        data = figure5a(
            harness, managers=("dps",), mid_workloads=("bayes",)
        )
        assert data.labels == ("bayes",)
        assert len(data.series["dps"]) == 1

    def test_figure5b_structure(self, harness):
        data = figure5b(harness, managers=("dps",), workloads=("bayes",))
        assert data.labels == ("bayes",)
        assert data.series["dps"][0] > 0

    def test_figure6_grouping(self, harness):
        pairs = [("bayes", "ft"), ("bayes", "mg"), ("lr", "ft")]
        by_spark, by_npb = figure6(
            harness, managers=("dps",), pairs=pairs
        )
        assert by_spark.labels == ("bayes", "lr")
        assert by_npb.labels == ("ft", "mg")
        # Grouped series lengths match label counts.
        assert len(by_spark.series["dps"]) == 2
        assert len(by_npb.series["dps"]) == 2

    def test_figure7_structure(self, harness):
        data = figure7(
            harness, managers=("dps",), pairs=[("bayes", "ft")]
        )
        assert set(data.fairness) == {"dps"}
        assert len(data.fairness["dps"]) == 1
        assert 0 <= data.mean_fairness["dps"] <= 1

"""Table generators and the §6.5 overhead analysis."""

import pytest

from repro.experiments.harness import ExperimentConfig
from repro.experiments.tables import (
    measure_decision_time,
    overhead_analysis,
    table3,
    table4,
)


class TestTable3:
    def test_static_contents(self):
        rows = table3()
        assert rows == [("low", 1, 8), ("mid", 48, 8), ("high", 48, 8)]


class TestWorkloadTables:
    def test_table4_rows(self, fast_config):
        rows = table4(fast_config)
        assert len(rows) == 8
        for row in rows:
            assert row.measured_duration_s > 0
            # NPB apps stretch under the constant cap: the full-scale
            # measured duration must exceed the uncapped program length.
            assert row.measured_above_110_pct > 90.0


class TestOverheadAnalysis:
    def test_rows_and_projection(self, fast_config):
        rows = overhead_analysis(
            measured_nodes=2,
            projected_nodes=(10, 100),
            cycles=5,
            config=fast_config,
        )
        assert len(rows) == 3
        measured = rows[0]
        assert not measured.projected
        assert measured.n_nodes == 2
        # 3 bytes per unit per direction (paper §6.5).
        assert measured.bytes_per_cycle == measured.n_units * 6
        for projected in rows[1:]:
            assert projected.projected
            assert projected.bytes_per_cycle == projected.n_units * 6

    def test_projection_scales_linearly(self, fast_config):
        rows = overhead_analysis(
            measured_nodes=2,
            projected_nodes=(10, 100),
            cycles=3,
            config=fast_config,
        )
        r10, r100 = rows[1], rows[2]
        # Compute scales linearly; network scales linearly above the
        # constant propagation term (paid once per direction per cycle).
        assert r100.compute_s == pytest.approx(10 * r10.compute_s)
        from repro.comm.network import NetworkModel

        prop = 2 * NetworkModel().propagation_s()
        assert (r100.network_s - prop) == pytest.approx(
            10 * (r10.network_s - prop)
        )

    def test_decision_loop_subsecond_at_paper_scale(self, fast_config):
        """§6.5: the 1 s decision loop dominates the controller cost."""
        rows = overhead_analysis(
            measured_nodes=10, projected_nodes=(), cycles=10,
            config=fast_config,
        )
        assert rows[0].turnaround_s < 0.1


class TestDecisionTime:
    @pytest.mark.parametrize("manager", ["constant", "slurm", "dps"])
    def test_measures_positive_time(self, manager):
        t = measure_decision_time(manager, n_units=8, steps=20)
        assert 0 < t < 0.05

    def test_dps_cost_same_order_as_slurm(self):
        """§6.5 claim: DPS has 'negligibly more operating overhead' than
        the stateless system — same order of magnitude per decision."""
        slurm = measure_decision_time("slurm", n_units=20, steps=60)
        dps = measure_decision_time("dps", n_units=20, steps=60)
        assert dps < slurm * 60  # Generous bound; typical ratio is ~5-15x
        assert dps < 0.01  # And absolutely tiny vs the 1 s loop.

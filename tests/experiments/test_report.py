"""Campaign markdown report."""

import pytest

from repro.experiments.campaign import CampaignResult, ExperimentRecord
from repro.experiments.report import campaign_report


def record(group="high_utility", a="kmeans", b="gmm", manager="dps",
           hmean=1.02, fairness=0.95):
    return ExperimentRecord(
        group=group, workload_a=a, workload_b=b, manager=manager,
        speedup_a=hmean, speedup_b=hmean, hmean_speedup=hmean,
        satisfaction_a=0.9, satisfaction_b=0.9, fairness=fairness,
    )


class TestCampaignReport:
    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="empty"):
            campaign_report(CampaignResult())

    def test_structure(self):
        result = CampaignResult(
            records=[
                record(manager="dps", hmean=1.02),
                record(manager="slurm", hmean=0.95),
                record(a="lda", manager="dps", hmean=1.05),
                record(a="lda", manager="slurm", hmean=0.9),
            ],
            seed=42,
            time_scale=0.2,
        )
        report = campaign_report(result)
        assert "# Campaign report" in report
        assert "## high_utility" in report
        assert "seed: 42" in report
        assert "mean fairness" in report
        # Best/worst lines name actual pairs.
        assert "best pair: lda/gmm (1.050)" in report
        assert "worst: lda/gmm (0.900)" in report
        # The chart block is fenced.
        assert report.count("```") == 2

    def test_constant_has_no_best_worst_line(self):
        result = CampaignResult(
            records=[record(manager="constant", hmean=1.0)]
        )
        report = campaign_report(result)
        assert "best pair" not in report

    def test_multi_group(self):
        result = CampaignResult(
            records=[
                record(group="low_utility"),
                record(group="spark_npb"),
            ]
        )
        report = campaign_report(result)
        assert "## low_utility" in report
        assert "## spark_npb" in report

    def test_round_trips_through_json(self, fast_config):
        from repro.experiments.campaign import Campaign

        campaign = Campaign(
            fast_config, groups=("low_utility",),
            managers=("constant", "dps"), limit_pairs=1,
        )
        result = campaign.run()
        restored = CampaignResult.from_json(result.to_json())
        assert campaign_report(restored) == campaign_report(result)

"""Pair enumerations of the three benchmark setups (paper §5.2, Appendix)."""

from repro.experiments.setups import (
    GROUP_MANAGERS,
    demanding_spark_names,
    high_utility_pairs,
    low_utility_pairs,
    spark_npb_pairs,
)


class TestPairCounts:
    def test_low_utility_28_pairs(self):
        pairs = low_utility_pairs()
        assert len(pairs) == 28
        assert all(b in ("wordcount", "sort", "terasort", "repartition")
                   for _, b in pairs)

    def test_high_utility_49_pairs(self):
        pairs = high_utility_pairs()
        assert len(pairs) == 49
        assert ("gmm", "gmm") in pairs  # Self-pairs included (7 x 7).

    def test_spark_npb_56_pairs(self):
        pairs = spark_npb_pairs()
        assert len(pairs) == 56
        assert all(b in ("bt", "cg", "ep", "ft", "is", "lu", "mg", "sp")
                   for _, b in pairs)

    def test_demanding_names(self):
        names = demanding_spark_names()
        assert len(names) == 7
        assert names[-1] == "gmm"  # high-power last.

    def test_no_duplicates(self):
        for pairs in (low_utility_pairs(), high_utility_pairs(),
                      spark_npb_pairs()):
            assert len(set(pairs)) == len(pairs)


class TestGroupManagers:
    def test_oracle_only_in_low_utility(self):
        assert "oracle" in GROUP_MANAGERS["low_utility"]
        assert "oracle" not in GROUP_MANAGERS["high_utility"]
        assert "oracle" not in GROUP_MANAGERS["spark_npb"]

"""Text rendering of figures and tables."""

import numpy as np

from repro.experiments.figures import Figure1Data, Figure7Data, FigureBars
from repro.experiments.reporting import (
    render_bars,
    render_figure1,
    render_figure7,
    render_overhead_rows,
    render_table,
    render_workload_rows,
)
from repro.experiments.tables import OverheadRow, WorkloadRow


class TestRenderTable:
    def test_alignment_and_separator(self):
        out = render_table(["name", "v"], [["a", 1], ["bb", 22]])
        lines = out.splitlines()
        assert lines[0].startswith("name")
        assert set(lines[1]) <= {"-", " "}
        assert len(lines) == 4

    def test_handles_long_cells(self):
        out = render_table(["x"], [["a-very-long-cell"]])
        assert "a-very-long-cell" in out


class TestRenderBars:
    def test_percent_gains(self):
        data = FigureBars(
            labels=("kmeans",),
            series={"dps": (1.08,), "slurm": (0.92,)},
        )
        out = render_bars(data, "title")
        assert "title" in out
        assert "+8.0" in out
        assert "-8.0" in out


class TestRenderFigure1:
    def test_contains_all_systems(self):
        data = Figure1Data(
            timesteps=(0, 1),
            demand=np.array([[30.0, 30.0], [160.0, 30.0]]),
            caps={"dps": np.full((2, 2), 120.0)},
            budget_w=240.0,
        )
        out = render_figure1(data)
        assert "dps" in out and "demand" in out and "T1" in out


class TestRenderFigure7:
    def test_summary_row_per_manager(self):
        data = Figure7Data(
            fairness={"dps": (0.9, 0.95)},
            hmean_speedups={"dps": (1.0, 1.02)},
            mean_fairness={"dps": 0.925},
            correlation={"dps": 0.5},
        )
        out = render_figure7(data)
        assert "0.925" in out and "+0.50" in out


class TestRenderRows:
    def test_workload_rows(self):
        rows = [
            WorkloadRow(
                name="kmeans", power_class="mid", data_size="224 GB",
                paper_duration_s=1467.0, measured_duration_s=1400.0,
                paper_above_110_pct=47.6, measured_above_110_pct=46.0,
            )
        ]
        out = render_workload_rows(rows, "Table 2")
        assert "kmeans" in out and "1467" in out and "46.0" in out

    def test_overhead_rows(self):
        rows = [
            OverheadRow(
                n_nodes=10, n_units=20, bytes_per_cycle=120,
                network_s=2e-4, compute_s=5e-4, turnaround_s=7e-4,
                projected=False,
            )
        ]
        out = render_overhead_rows(rows)
        assert "measured" in out and "120" in out

"""Budget and noise sweeps."""

import pytest

from repro.experiments.sweeps import budget_sweep, noise_sweep


class TestBudgetSweep:
    def test_points_per_fraction_and_manager(self, fast_config):
        points = budget_sweep(
            fast_config,
            pair=("bayes", "sort"),
            budget_fractions=(0.6, 0.8),
            managers=("constant", "slurm"),
        )
        assert len(points) == 4
        assert {p.parameter for p in points} == {0.6, 0.8}
        assert {p.manager for p in points} == {"constant", "slurm"}

    def test_constant_is_unity_at_every_budget(self, fast_config):
        points = budget_sweep(
            fast_config,
            pair=("bayes", "sort"),
            budget_fractions=(0.6, 0.9),
            managers=("constant",),
        )
        for p in points:
            assert p.hmean_speedup == pytest.approx(1.0)

    def test_rejects_bad_fraction(self, fast_config):
        with pytest.raises(ValueError, match="fractions"):
            budget_sweep(fast_config, budget_fractions=(1.5,))

    def test_rejects_empty(self, fast_config):
        with pytest.raises(ValueError, match="non-empty"):
            budget_sweep(fast_config, budget_fractions=())


class TestNoiseSweep:
    def test_points_generated(self, fast_config):
        points = noise_sweep(
            fast_config,
            pair=("bayes", "sort"),
            noise_stds_w=(0.0, 4.0),
            managers=("dps",),
        )
        assert len(points) == 2
        for p in points:
            assert 0 <= p.fairness <= 1
            assert p.hmean_speedup > 0

    def test_rejects_negative_noise(self, fast_config):
        with pytest.raises(ValueError, match=">= 0"):
            noise_sweep(fast_config, noise_stds_w=(-1.0,))

"""Parallel engine: job graph, digests, persistent cache, determinism."""

import json
import multiprocessing
import os
import sys
from concurrent.futures.process import BrokenProcessPool

import pytest

from repro.cluster.simulator import Simulation
from repro.experiments.campaign import Campaign
from repro.experiments.engine import (
    CACHE_FORMAT,
    EngineTelemetry,
    ExperimentEngine,
    ResultCache,
    decode_result,
    encode_result,
    job_digest,
)
from repro.experiments.harness import PairOutcome, ReferenceStats
from repro.experiments.jobs import (
    JobGraph,
    SimJob,
    baseline_job,
    evaluation_jobs,
    pair_job,
    reference_job,
)


def small_campaign(fast_config, **kwargs):
    defaults = dict(
        config=fast_config,
        groups=("low_utility",),
        managers=("constant", "slurm"),
        limit_pairs=1,
    )
    defaults.update(kwargs)
    return Campaign(**defaults)


class TestSimJob:
    def test_reference_takes_single_workload(self):
        with pytest.raises(ValueError, match="single workload"):
            SimJob(kind="reference", workload_a="a", workload_b="b")

    def test_pair_needs_two_workloads(self):
        with pytest.raises(ValueError, match="pair"):
            SimJob(kind="pair", workload_a="a", manager="dps")

    def test_prereq_kinds_pin_constant_manager(self):
        with pytest.raises(ValueError, match="constant"):
            SimJob(kind="baseline", workload_a="a", workload_b="b",
                   manager="dps")

    def test_constant_pair_is_the_baseline(self):
        assert pair_job("a", "b", "constant") == baseline_job("a", "b")
        with pytest.raises(ValueError, match="baseline"):
            SimJob(kind="pair", workload_a="a", workload_b="b",
                   manager="constant")

    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown job kind"):
            SimJob(kind="mystery", workload_a="a")

    def test_keys(self):
        assert reference_job("kmeans").key == "reference:kmeans"
        assert pair_job("kmeans", "gmm", "dps").key == "pair:kmeans/gmm:dps"

    def test_pair_prerequisites(self):
        job = pair_job("a", "b", "dps")
        assert job.prerequisites() == (
            baseline_job("a", "b"),
            reference_job("a"),
            reference_job("b"),
        )

    def test_prereq_jobs_have_no_prerequisites(self):
        assert reference_job("a").prerequisites() == ()
        assert baseline_job("a", "b").prerequisites() == ()

    def test_evaluation_jobs_constant_manager(self):
        jobs = evaluation_jobs("a", "b", "constant")
        assert jobs == (
            baseline_job("a", "b"),
            reference_job("a"),
            reference_job("b"),
        )


class TestJobGraph:
    def test_dedups_and_closes_over_prerequisites(self):
        graph = JobGraph([pair_job("a", "b", "dps"),
                          pair_job("a", "b", "dps"),
                          pair_job("a", "b", "slurm")])
        keys = {j.key for j in graph}
        assert len(graph) == 5
        assert "baseline:a/b:constant" in keys
        assert "reference:a" in keys and "reference:b" in keys

    def test_two_waves(self):
        graph = JobGraph([pair_job("a", "b", "dps"),
                          pair_job("b", "c", "slurm")])
        waves = graph.waves()
        assert len(waves) == 2
        assert all(j.kind in ("reference", "baseline") for j in waves[0])
        assert all(j.kind == "pair" for j in waves[1])
        assert sum(len(w) for w in waves) == len(graph)


class TestJobDigest:
    def test_distinct_per_job(self, fast_config):
        jobs = [reference_job("a"), baseline_job("a", "b"),
                pair_job("a", "b", "dps"), pair_job("a", "b", "slurm")]
        digests = {job_digest(fast_config, j) for j in jobs}
        assert len(digests) == len(jobs)

    def test_config_change_invalidates(self, fast_config):
        job = pair_job("a", "b", "dps")
        before = job_digest(fast_config, job)
        bumped = ExperimentConfig_with_seed(fast_config, fast_config.seed + 1)
        assert job_digest(bumped, job) != before

    def test_stable(self, fast_config):
        job = reference_job("kmeans")
        assert job_digest(fast_config, job) == job_digest(fast_config, job)


def ExperimentConfig_with_seed(config, seed):
    from dataclasses import replace

    return replace(config, seed=seed)


class TestPayloadCodec:
    def test_reference_round_trip(self):
        stats = ReferenceStats(mean_duration_s=12.34, mean_power_w=99.5)
        assert decode_result(encode_result(stats)) == stats

    def test_outcome_round_trip_is_bit_exact(self):
        outcome = PairOutcome(
            manager="dps", workload_a="a", workload_b="b",
            times_a_s=(1.1, 0.1 + 0.2), times_b_s=(2.2,),
            power_a_w=100.0, power_b_w=205.3,
            max_caps_sum_w=400.0, sim_time_s=77.7,
        )
        # Through JSON text too, not just the dict: floats must survive
        # the shortest-round-trip serialization exactly.
        doc = json.loads(json.dumps(encode_result(outcome)))
        assert decode_result(doc) == outcome

    def test_rejects_unknown_type(self):
        with pytest.raises(ValueError, match="unknown payload type"):
            decode_result({"type": "mystery"})


class TestResultCache:
    def test_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path)
        payload = {"type": "reference", "mean_duration_s": 1.0,
                   "mean_power_w": 2.0}
        cache.store("d" * 64, "reference:a", payload)
        assert cache.load("d" * 64) == payload
        assert (cache.hits, cache.misses, cache.invalid) == (1, 0, 0)
        assert len(cache) == 1

    def test_missing_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.load("e" * 64) is None
        assert (cache.hits, cache.misses, cache.invalid) == (0, 1, 0)

    def test_corrupted_json_is_invalid(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.path("f" * 64).write_text("{truncated", encoding="utf-8")
        assert cache.load("f" * 64) is None
        assert cache.invalid == 1

    def test_tampered_payload_fails_checksum(self, tmp_path):
        cache = ResultCache(tmp_path)
        digest = "a" * 64
        cache.store(digest, "k", {"type": "reference",
                                  "mean_duration_s": 1.0,
                                  "mean_power_w": 2.0})
        doc = json.loads(cache.path(digest).read_text(encoding="utf-8"))
        doc["payload"]["mean_power_w"] = 3.0
        cache.path(digest).write_text(json.dumps(doc), encoding="utf-8")
        assert cache.load(digest) is None
        assert cache.invalid == 1

    def test_stale_digest_is_invalid(self, tmp_path):
        # A record copied to the wrong digest (e.g. a config changed and
        # files were renamed by hand) must not be served.
        cache = ResultCache(tmp_path)
        cache.store("a" * 64, "k", {"type": "reference",
                                    "mean_duration_s": 1.0,
                                    "mean_power_w": 2.0})
        cache.path("a" * 64).rename(cache.path("b" * 64))
        assert cache.load("b" * 64) is None
        assert cache.invalid == 1

    def test_wrong_format_tag_is_invalid(self, tmp_path):
        cache = ResultCache(tmp_path)
        digest = "c" * 64
        cache.store(digest, "k", {"type": "reference",
                                  "mean_duration_s": 1.0,
                                  "mean_power_w": 2.0})
        doc = json.loads(cache.path(digest).read_text(encoding="utf-8"))
        doc["format"] = "repro-simcache-v0"
        cache.path(digest).write_text(json.dumps(doc), encoding="utf-8")
        assert cache.load(digest) is None
        assert cache.invalid == 1

    def test_format_tag(self):
        assert CACHE_FORMAT == "repro-simcache-v1"


def _count_sim_runs(monkeypatch):
    """Patch Simulation.run to count invocations (in this process)."""
    calls = []
    original = Simulation.run

    def counting(self, *args, **kwargs):
        calls.append(1)
        return original(self, *args, **kwargs)

    monkeypatch.setattr(Simulation, "run", counting)
    return calls


class TestDeterminism:
    def test_parallel_matches_sequential(self, fast_config):
        sequential = small_campaign(fast_config).run(jobs=1)
        parallel = small_campaign(fast_config).run(jobs=4)
        assert parallel.records == sequential.records
        assert parallel.engine.workers == 4
        assert parallel.engine.n_jobs == sequential.engine.n_jobs

    def test_warm_cache_skips_simulation_bit_identically(
        self, fast_config, tmp_path, monkeypatch
    ):
        cold = small_campaign(fast_config).run(cache=ResultCache(tmp_path))
        assert cold.engine.cache_misses == cold.engine.n_jobs

        calls = _count_sim_runs(monkeypatch)
        warm_cache = ResultCache(tmp_path)
        warm = small_campaign(fast_config).run(cache=warm_cache)
        assert calls == []  # Every job served from disk.
        assert warm.records == cold.records
        assert warm.engine.cache_hits == warm.engine.n_jobs
        assert warm.engine.cache_misses == 0
        assert all(t.cached for t in warm.engine.job_timings)

    def test_corrupted_entry_is_resimulated(
        self, fast_config, tmp_path, monkeypatch
    ):
        cache = ResultCache(tmp_path)
        cold = small_campaign(fast_config).run(cache=cache)
        victim = next(iter(sorted(cache.root.glob("*.json"))))
        doc = json.loads(victim.read_text(encoding="utf-8"))
        doc["payload"]["mean_power_w" if "mean_power_w" in doc["payload"]
                       else "power_a_w"] = -1.0
        victim.write_text(json.dumps(doc), encoding="utf-8")

        calls = _count_sim_runs(monkeypatch)
        warm_cache = ResultCache(tmp_path)
        warm = small_campaign(fast_config).run(cache=warm_cache)
        # Exactly the tampered job re-ran; the checksum caught it.
        assert len(calls) == 1
        assert warm.engine.cache_invalid == 1
        assert warm.engine.cache_hits == warm.engine.n_jobs - 1
        assert warm.records == cold.records  # Repaired, not trusted.
        # And the repaired record was written back verified.
        final = ResultCache(tmp_path)
        digest = victim.stem
        assert final.load(digest) is not None

    def test_cache_round_trip_through_parallel_run(self, fast_config, tmp_path):
        cold = small_campaign(fast_config).run(
            jobs=2, cache=ResultCache(tmp_path)
        )
        warm = small_campaign(fast_config).run(
            jobs=2, cache=ResultCache(tmp_path)
        )
        assert warm.records == cold.records
        assert warm.engine.cache_hits == warm.engine.n_jobs


class TestEngineTelemetry:
    def test_job_timings_cover_graph(self, fast_config):
        result = small_campaign(fast_config).run()
        eng = result.engine
        assert isinstance(eng, EngineTelemetry)
        assert len(eng.job_timings) == eng.n_jobs
        assert eng.total_wall_s > 0
        assert not any(t.cached for t in eng.job_timings)
        assert all(t.wall_s > 0 for t in eng.job_timings)

    def test_progress_callback(self, fast_config):
        seen = []
        small_campaign(fast_config).run(
            engine_progress=lambda *a: seen.append(a)
        )
        dones = [s[0] for s in seen]
        assert dones == list(range(1, len(seen) + 1))
        done, total, job, wall_s, cached, eta_s = seen[-1]
        assert done == total
        assert isinstance(job, SimJob)
        assert eta_s == pytest.approx(0.0)

    def test_round_trip_doc(self):
        eng = EngineTelemetry(
            workers=4, n_jobs=2, cache_hits=1, cache_misses=1,
            cache_invalid=0, total_wall_s=1.5,
            job_timings=(),
        )
        assert EngineTelemetry.from_doc(eng.to_doc()) == eng

    def test_rejects_bad_jobs(self, fast_config):
        with pytest.raises(ValueError, match="jobs"):
            ExperimentEngine(fast_config, jobs=0)


# --------------------------------------------------------------------------
# Pool-crash recovery, cancellation, and cache write races.
#
# The helpers below are module-level because pool workers pickle callables
# by qualified name: a closure or a monkeypatched lambda cannot cross the
# process boundary, but ``tests.experiments.test_engine._killer_pool_run``
# can (the ``tests`` tree is a package).
# --------------------------------------------------------------------------

from repro.experiments import engine as engine_module  # noqa: E402

_REAL_POOL_RUN = engine_module._pool_run

#: Path of the crash flag file, set per-test; forked pool workers inherit
#: it.  Flag contents "once" → the first worker to see it deletes it and
#: dies; "forever" → every worker dies.
_KILL_FLAG: str | None = None


def _killer_pool_run(job):
    flag = _KILL_FLAG
    if flag is not None and os.path.exists(flag):
        with open(flag, encoding="utf-8") as fh:
            mode = fh.read().strip()
        if mode == "once":
            os.unlink(flag)
        os._exit(1)
    return _REAL_POOL_RUN(job)


def _hammer_store(root, digest, n):
    cache = ResultCache(root)
    payload = {"type": "reference", "mean_duration_s": 1.25,
               "mean_power_w": 94.0}
    for _ in range(n):
        cache.store(digest, "reference:race", payload)


needs_fork = pytest.mark.skipif(
    multiprocessing.get_start_method() != "fork",
    reason="crash injection relies on fork inheriting the flag path",
)


@needs_fork
class TestBrokenPoolRecovery:
    def _arm(self, monkeypatch, tmp_path, mode):
        flag = tmp_path / "kill.flag"
        flag.write_text(mode, encoding="utf-8")
        monkeypatch.setattr(sys.modules[__name__], "_KILL_FLAG", str(flag))
        monkeypatch.setattr(engine_module, "_pool_run", _killer_pool_run)

    def test_one_worker_death_is_absorbed(
        self, fast_config, monkeypatch, tmp_path
    ):
        self._arm(monkeypatch, tmp_path, "once")
        jobs = evaluation_jobs("kmeans", "gmm", "slurm")
        engine = ExperimentEngine(fast_config, jobs=2)
        results = engine.run(jobs)
        assert results == ExperimentEngine(fast_config).run(jobs)
        assert [e.kind for e in engine.events] == ["pool_rebuilt"]

    def test_second_death_in_a_wave_propagates(
        self, fast_config, monkeypatch, tmp_path
    ):
        self._arm(monkeypatch, tmp_path, "forever")
        engine = ExperimentEngine(fast_config, jobs=2)
        with pytest.raises(BrokenProcessPool):
            engine.run(evaluation_jobs("kmeans", "gmm", "slurm"))
        # The second break aborted the run, but the engine's finally
        # still reaped the pool.
        assert engine.backend._pool is None


class TestCancellation:
    def test_ctrl_c_mid_wave_leaves_nothing_torn(
        self, fast_config, tmp_path
    ):
        cache = ResultCache(tmp_path)
        engine = ExperimentEngine(fast_config, jobs=2, cache=cache)
        pool_procs = []

        def boom(done, total, job, wall_s, cached, eta):
            pool = engine.backend._pool
            if pool is not None:
                pool_procs.extend(pool._processes.values())
            raise KeyboardInterrupt

        jobs = evaluation_jobs("kmeans", "gmm", "slurm")
        with pytest.raises(KeyboardInterrupt):
            engine.run(jobs, progress=boom)

        # No orphaned worker processes: shutdown(wait=True) ran.
        assert engine.backend._pool is None
        assert pool_procs
        for proc in pool_procs:
            proc.join(timeout=10)
            assert not proc.is_alive()
        # No torn cache entries: no staging debris, every persisted
        # record fully verifies.
        assert list(tmp_path.glob("*.tmp")) == []
        for record in tmp_path.glob("*.json"):
            assert cache.load(record.stem) is not None
        # The interrupted campaign resumes cleanly from the same cache.
        resumed = ExperimentEngine(fast_config, cache=cache).run(jobs)
        assert resumed == ExperimentEngine(fast_config).run(jobs)

    def test_ctrl_c_inline_backend_is_clean(self, fast_config, tmp_path):
        cache = ResultCache(tmp_path)
        engine = ExperimentEngine(fast_config, cache=cache)

        def boom(done, total, job, wall_s, cached, eta):
            raise KeyboardInterrupt

        with pytest.raises(KeyboardInterrupt):
            engine.run(
                evaluation_jobs("kmeans", "gmm", "slurm"), progress=boom
            )
        assert list(tmp_path.glob("*.tmp")) == []
        for record in tmp_path.glob("*.json"):
            assert cache.load(record.stem) is not None


class TestCacheWriteRaces:
    def test_concurrent_same_digest_writers(self, tmp_path):
        digest = "ab" * 32
        procs = [
            multiprocessing.Process(
                target=_hammer_store, args=(str(tmp_path), digest, 50)
            )
            for _ in range(4)
        ]
        for p in procs:
            p.start()
        for p in procs:
            p.join(timeout=60)
            assert p.exitcode == 0
        assert list(tmp_path.glob("*.tmp")) == []
        cache = ResultCache(tmp_path)
        assert cache.load(digest) is not None
        assert len(cache) == 1

    def test_lost_replace_tolerated_when_survivor_verifies(
        self, tmp_path, monkeypatch
    ):
        cache = ResultCache(tmp_path)
        digest = "d" * 64
        payload = {"type": "reference", "mean_duration_s": 1.0,
                   "mean_power_w": 2.0}
        cache.store(digest, "k", payload)

        def deny(src, dst):
            raise PermissionError("file is locked by another writer")

        monkeypatch.setattr(os, "replace", deny)
        cache.store(digest, "k", payload)
        assert list(tmp_path.glob("*.tmp")) == []
        assert cache.load(digest) == payload

    def test_lost_replace_raises_without_survivor(
        self, tmp_path, monkeypatch
    ):
        cache = ResultCache(tmp_path)

        def deny(src, dst):
            raise PermissionError("file is locked by another writer")

        monkeypatch.setattr(os, "replace", deny)
        with pytest.raises(PermissionError):
            cache.store("e" * 64, "k", {"type": "reference",
                                        "mean_duration_s": 1.0,
                                        "mean_power_w": 2.0})
        # Even the failing path cleans up its staging file.
        assert list(tmp_path.glob("*.tmp")) == []

"""Campaign runner: execution, summaries, serialization."""

import json

import pytest

from repro.experiments.campaign import (
    Campaign,
    CampaignResult,
    ExperimentRecord,
)


def small_campaign(fast_config, **kwargs):
    defaults = dict(
        config=fast_config,
        groups=("low_utility",),
        managers=("constant", "slurm"),
        limit_pairs=2,
    )
    defaults.update(kwargs)
    return Campaign(**defaults)


class TestValidation:
    def test_rejects_unknown_group(self, fast_config):
        with pytest.raises(ValueError, match="unknown group"):
            Campaign(fast_config, groups=("bogus",))

    def test_rejects_bad_limit(self, fast_config):
        with pytest.raises(ValueError, match="limit_pairs"):
            Campaign(fast_config, limit_pairs=0)


class TestRun:
    def test_record_count(self, fast_config):
        result = small_campaign(fast_config).run()
        assert len(result.records) == 2 * 2  # 2 pairs x 2 managers.

    def test_progress_callback(self, fast_config):
        seen = []
        small_campaign(fast_config).run(
            progress=lambda g, p, m: seen.append((g, p, m))
        )
        assert len(seen) == 4
        assert seen[0][0] == "low_utility"

    def test_group_default_managers(self, fast_config):
        campaign = small_campaign(fast_config, managers=None, limit_pairs=1)
        result = campaign.run()
        assert {r.manager for r in result.records} == {
            "slurm", "dps", "oracle",
        }

    def test_filters(self, fast_config):
        result = small_campaign(fast_config).run()
        assert len(result.for_group("low_utility")) == 4
        assert len(result.for_manager("slurm")) == 2
        assert result.for_group("spark_npb") == []


class TestSummaries:
    def test_summary_keys_and_values(self, fast_config):
        result = small_campaign(fast_config).run()
        summary = result.summary()
        assert ("low_utility", "constant") in summary
        stats = summary[("low_utility", "constant")]
        assert stats.n == 2
        assert stats.hmean == pytest.approx(1.0, abs=1e-6)

    def test_mean_fairness_in_range(self, fast_config):
        result = small_campaign(fast_config).run()
        for value in result.mean_fairness().values():
            assert 0 <= value <= 1

    def test_summaries_independent_of_record_order(self, fast_config):
        """The single-pass groupby must not depend on record adjacency."""
        result = small_campaign(fast_config).run()
        shuffled = CampaignResult(
            records=list(reversed(result.records)),
            seed=result.seed,
            time_scale=result.time_scale,
        )
        interleaved = CampaignResult(
            records=result.records[1::2] + result.records[0::2],
            seed=result.seed,
            time_scale=result.time_scale,
        )
        for variant in (shuffled, interleaved):
            assert variant.summary() == result.summary()
            assert variant.mean_fairness() == result.mean_fairness()
            assert list(variant.summary()) == sorted(variant.summary())


class TestSerialization:
    def test_json_round_trip(self, fast_config):
        result = small_campaign(fast_config).run()
        restored = CampaignResult.from_json(result.to_json())
        assert restored.seed == result.seed
        assert restored.time_scale == result.time_scale
        assert restored.records == result.records

    def test_v2_round_trips_engine_telemetry(self, fast_config):
        result = small_campaign(fast_config).run()
        restored = CampaignResult.from_json(result.to_json())
        assert restored.engine == result.engine
        assert restored.engine.n_jobs > 0

    def test_accepts_v1_documents(self, fast_config):
        """Pre-engine campaign files (no telemetry block) still load."""
        result = small_campaign(fast_config).run()
        doc = json.loads(result.to_json())
        doc["format"] = "repro-campaign-v1"
        del doc["engine"]
        restored = CampaignResult.from_json(json.dumps(doc))
        assert restored.records == result.records
        assert restored.engine is None

    def test_rejects_wrong_format(self):
        with pytest.raises(ValueError, match="unsupported"):
            CampaignResult.from_json('{"format": "x"}')

    def test_record_is_frozen(self):
        rec = ExperimentRecord(
            group="g", workload_a="a", workload_b="b", manager="m",
            speedup_a=1.0, speedup_b=1.0, hmean_speedup=1.0,
            satisfaction_a=1.0, satisfaction_b=1.0, fairness=1.0,
        )
        with pytest.raises(AttributeError):
            rec.fairness = 0.5  # type: ignore[misc]

"""Distributed campaign backend: leases, chaos, bit-identity, degradation.

The acceptance bar for the distributed path is the same as the local
pool's: records bit-identical to a single-process run, under injected
worker crashes and straggler hangs, with every failure surfaced as a
structured worker-lifecycle event.  All timing knobs here are loopback
scale (leases of a second, backoff of tenths) — the defaults are for
real networks.
"""

import socket
import time

import pytest

from repro.comm.wire import recv_doc, send_doc
from repro.experiments.campaign import Campaign
from repro.experiments.distributed import (
    CoordinatorConfig,
    DistributedBackend,
    DistributedWorker,
    WorkerChaos,
    _payload_sha256,
    parse_workers,
)
from repro.experiments.engine import (
    ExperimentEngine,
    ResultCache,
    job_digest,
)
from repro.experiments.jobs import evaluation_jobs, reference_job
from repro.telemetry.log import WORKER_EVENT_KINDS


def small_campaign(fast_config, **kwargs):
    defaults = dict(
        config=fast_config,
        groups=("low_utility",),
        managers=("constant", "slurm", "dps"),
        limit_pairs=1,
    )
    defaults.update(kwargs)
    return Campaign(**defaults)


def fast_coordinator(**overrides) -> CoordinatorConfig:
    defaults = dict(
        lease_timeout_s=1.0,
        heartbeat_s=0.1,
        connect_timeout_s=0.5,
        max_retries=3,
        retry_backoff_s=0.1,
        backoff_factor=2.0,
        jitter_s=0.02,
        speculation_min_s=30.0,
        seed=7,
    )
    defaults.update(overrides)
    return CoordinatorConfig(**defaults)


def _dead_address() -> str:
    """An address nothing listens on (bound once, then released)."""
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    return f"127.0.0.1:{port}"


@pytest.fixture
def make_worker():
    """Factory for background loopback workers, stopped on teardown."""
    workers = []

    def _make(cls=DistributedWorker, **kwargs):
        worker = cls(**kwargs)
        workers.append(worker)
        worker.serve_in_background()
        return worker

    yield _make
    for worker in workers:
        worker.stop()


def kinds(backend: DistributedBackend) -> list[str]:
    return [e.kind for e in backend.events]


class TestParseWorkers:
    def test_comma_list(self):
        assert parse_workers("a:1, b:2,") == ["a:1", "b:2"]

    def test_rejects_portless(self):
        with pytest.raises(ValueError, match="host:port"):
            parse_workers("justahost")

    def test_rejects_bad_port(self):
        with pytest.raises(ValueError, match="invalid port"):
            parse_workers("host:http")

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="no worker addresses"):
            parse_workers(" , ")


class TestConfigValidation:
    def test_lease_must_cover_heartbeats(self):
        with pytest.raises(ValueError, match="two heartbeats"):
            CoordinatorConfig(lease_timeout_s=0.1, heartbeat_s=0.1)

    def test_max_retries_positive(self):
        with pytest.raises(ValueError, match="max_retries"):
            CoordinatorConfig(max_retries=0)

    def test_chaos_rejects_negative(self):
        with pytest.raises(ValueError, match="ordinals"):
            WorkerChaos(kill_after_jobs=-1)

    def test_backend_needs_workers(self):
        with pytest.raises(ValueError, match="at least one"):
            DistributedBackend([])


class TestHappyPath:
    def test_three_workers_bit_identical(self, fast_config, make_worker):
        fleet = [make_worker() for _ in range(3)]
        backend = DistributedBackend(
            [w.address for w in fleet],
            fast_coordinator(lease_timeout_s=20.0),
        )
        sequential = small_campaign(fast_config).run(jobs=1)
        distributed = small_campaign(fast_config).run(backend=backend)
        assert distributed.records == sequential.records
        assert distributed.engine.backend == "distributed"
        assert distributed.engine.workers == 3
        assert kinds(backend).count("worker_joined") == 3
        # Workers bump jobs_done just *after* sending a result, so give
        # the last bump a moment; a loaded box may also expire a lease
        # and run a job twice (the duplicate is discarded by digest),
        # hence >= rather than ==.
        deadline = time.monotonic() + 2.0
        while (
            sum(w.jobs_done for w in fleet) < distributed.engine.n_jobs
            and time.monotonic() < deadline
        ):
            time.sleep(0.01)
        assert sum(w.jobs_done for w in fleet) >= distributed.engine.n_jobs

    def test_events_surface_through_engine(self, fast_config, make_worker):
        worker = make_worker()
        backend = DistributedBackend([worker.address], fast_coordinator())
        engine = ExperimentEngine(fast_config, backend=backend)
        engine.run([reference_job("kmeans")])
        assert engine.events is backend.events
        assert "worker_joined" in kinds(backend)

    def test_on_event_callback_sees_every_event(
        self, fast_config, make_worker
    ):
        seen = []
        worker = make_worker()
        backend = DistributedBackend(
            [worker.address], fast_coordinator(), on_event=seen.append
        )
        ExperimentEngine(fast_config, backend=backend).run(
            [reference_job("kmeans")]
        )
        assert [e.kind for e in seen] == kinds(backend)


class TestChaos:
    def test_kill_and_hang_bit_identity(self, fast_config, make_worker):
        """The acceptance drill: 3 workers, one crashes after its first
        job, one goes silent on its first job; records must be
        bit-identical to ``jobs=1`` and every failure must land on the
        event channel."""
        fleet = [
            make_worker(chaos=WorkerChaos(kill_after_jobs=1)),
            make_worker(chaos=WorkerChaos(hang_before_job=1, hang_s=30.0)),
            make_worker(),
        ]
        backend = DistributedBackend(
            [w.address for w in fleet], fast_coordinator()
        )
        sequential = small_campaign(fast_config).run(jobs=1)
        distributed = small_campaign(fast_config).run(backend=backend)

        assert distributed.records == sequential.records
        seen = kinds(backend)
        assert set(seen) <= set(WORKER_EVENT_KINDS)
        # The hang: its lease expired and the job went elsewhere.
        assert "lease_expired" in seen
        assert "lease_redispatched" in seen
        # The crash (and the hang) quarantined their workers.
        assert seen.count("worker_quarantined") >= 2
        # The crashed worker's reconnects ran out.
        assert "worker_lost" in seen

    def test_unreachable_workers_warn_and_degrade(self, fast_config):
        backend = DistributedBackend(
            [_dead_address(), _dead_address()], fast_coordinator()
        )
        jobs = evaluation_jobs("kmeans", "gmm", "dps")
        results = ExperimentEngine(fast_config, backend=backend).run(jobs)
        inline = ExperimentEngine(fast_config).run(jobs)
        assert results == inline
        seen = kinds(backend)
        assert seen.count("worker_skipped") == 2
        assert "backend_degraded" in seen

    def test_local_fallback_disabled_raises(self, fast_config):
        backend = DistributedBackend(
            [_dead_address()], fast_coordinator(local_fallback=False)
        )
        engine = ExperimentEngine(fast_config, backend=backend)
        with pytest.raises(RuntimeError, match="all remote workers lost"):
            engine.run([reference_job("kmeans")])


class TestSpeculation:
    def test_first_valid_result_wins(self, fast_config, make_worker):
        straggler = make_worker(
            chaos=WorkerChaos(hang_before_job=1, hang_s=30.0)
        )
        good = make_worker()
        backend = DistributedBackend(
            [straggler.address, good.address],
            fast_coordinator(
                lease_timeout_s=30.0,
                heartbeat_s=0.1,
                speculation_min_s=0.3,
                speculation_factor=1.0,
            ),
        )
        jobs = evaluation_jobs("kmeans", "gmm", "dps")
        results = ExperimentEngine(fast_config, backend=backend).run(jobs)
        inline = ExperimentEngine(fast_config).run(jobs)
        assert results == inline
        seen = kinds(backend)
        assert "job_speculated" in seen
        # The straggler never forfeited its lease — speculation, not
        # expiry, recovered the wave.
        assert "lease_expired" not in seen


class _DoubleSender(DistributedWorker):
    """Sends every result twice — a worker that retries over-eagerly."""

    def _finish_job(self, conn, entry):
        payload = entry.box["payload"]
        frame = {
            "type": "result",
            "digest": entry.digest,
            "wall_s": 0.01,
            "payload": payload,
            "payload_sha256": _payload_sha256(payload),
        }
        send_doc(conn, frame)
        send_doc(conn, frame)
        self.jobs_done += 1
        return True


class _CorruptSender(DistributedWorker):
    """Sends results whose checksum never verifies — bad RAM, bad NIC."""

    def _finish_job(self, conn, entry):
        send_doc(
            conn,
            {
                "type": "result",
                "digest": entry.digest,
                "wall_s": 0.01,
                "payload": entry.box["payload"],
                "payload_sha256": "0" * 64,
            },
        )
        self.jobs_done += 1
        return True


class TestResultIntegrity:
    def test_duplicate_results_discarded_by_digest(
        self, fast_config, make_worker
    ):
        worker = make_worker(cls=_DoubleSender)
        backend = DistributedBackend([worker.address], fast_coordinator())
        jobs = evaluation_jobs("kmeans", "gmm", "dps")
        results = ExperimentEngine(fast_config, backend=backend).run(jobs)
        inline = ExperimentEngine(fast_config).run(jobs)
        assert results == inline
        assert kinds(backend).count("duplicate_discarded") >= 1

    def test_corrupt_results_rejected_then_degrade(
        self, fast_config, make_worker
    ):
        worker = make_worker(cls=_CorruptSender)
        backend = DistributedBackend([worker.address], fast_coordinator())
        jobs = [reference_job("kmeans")]
        results = ExperimentEngine(fast_config, backend=backend).run(jobs)
        assert results == ExperimentEngine(fast_config).run(jobs)
        seen = kinds(backend)
        assert "worker_result_invalid" in seen
        # Three corrupt results in a row cost the worker its membership;
        # the job finished locally.
        assert "worker_lost" in seen
        assert "backend_degraded" in seen

    def test_corrupt_worker_outvoted_by_healthy_one(
        self, fast_config, make_worker
    ):
        corrupt = make_worker(cls=_CorruptSender)
        good = make_worker()
        backend = DistributedBackend(
            [corrupt.address, good.address], fast_coordinator()
        )
        jobs = evaluation_jobs("kmeans", "gmm", "dps")
        results = ExperimentEngine(fast_config, backend=backend).run(jobs)
        assert results == ExperimentEngine(fast_config).run(jobs)
        assert "worker_result_invalid" in kinds(backend)


class TestWorkerProtocol:
    def test_refuses_digest_mismatch(self, fast_config, make_worker):
        worker = make_worker()
        with socket.create_connection(
            ("127.0.0.1", worker.port), timeout=5
        ) as sock:
            assert recv_doc(sock)["type"] == "ready"
            send_doc(sock, {"type": "hello", "heartbeat_s": 0.2})
            send_doc(sock, {"type": "config", "config": fast_config.to_doc()})
            assert recv_doc(sock)["type"] == "config_ok"
            job = reference_job("kmeans")
            send_doc(
                sock,
                {
                    "type": "job",
                    "digest": "f" * 64,
                    "tokens": list(job.tokens),
                    "key": job.key,
                },
            )
            reply = recv_doc(sock)
        assert reply["type"] == "error"
        assert "digest mismatch" in reply["error"]

    def test_refuses_job_before_config(self, fast_config, make_worker):
        worker = make_worker()
        job = reference_job("kmeans")
        with socket.create_connection(
            ("127.0.0.1", worker.port), timeout=5
        ) as sock:
            assert recv_doc(sock)["type"] == "ready"
            send_doc(
                sock,
                {
                    "type": "job",
                    "digest": job_digest(fast_config, job),
                    "tokens": list(job.tokens),
                    "key": job.key,
                },
            )
            reply = recv_doc(sock)
        assert reply["type"] == "error"
        assert "before config" in reply["error"]

    def test_worker_side_cache_serves_repeat_campaigns(
        self, fast_config, tmp_path, make_worker
    ):
        worker = make_worker(cache=ResultCache(tmp_path))
        backend = DistributedBackend([worker.address], fast_coordinator())
        jobs = evaluation_jobs("kmeans", "gmm", "dps")
        first = ExperimentEngine(fast_config, backend=backend).run(jobs)
        second = ExperimentEngine(fast_config, backend=backend).run(jobs)
        assert second == first
        # The second run was served from the worker's own disk cache.
        assert worker.cache.hits >= len(jobs)


class _FlakyFirstSender(DistributedWorker):
    """Corrupts its first result, then behaves — a transient fault."""

    def _finish_job(self, conn, entry):
        if not getattr(self, "_flaked", False):
            self._flaked = True
            send_doc(
                conn,
                {
                    "type": "result",
                    "digest": entry.digest,
                    "wall_s": 0.01,
                    "payload": entry.box["payload"],
                    "payload_sha256": "0" * 64,
                },
            )
            return True
        return super()._finish_job(conn, entry)


class TestConcurrency:
    def test_rejects_nonpositive_concurrency(self):
        with pytest.raises(ValueError, match="concurrency"):
            DistributedWorker(concurrency=0)

    def test_slots_announced_in_ready(self, make_worker):
        worker = make_worker(concurrency=3)
        with socket.create_connection(
            ("127.0.0.1", worker.port), timeout=5
        ) as sock:
            ready = recv_doc(sock)
        assert ready["type"] == "ready"
        assert ready["slots"] == 3

    def test_one_worker_many_slots_bit_identical(
        self, fast_config, make_worker
    ):
        worker = make_worker(concurrency=4)
        backend = DistributedBackend([worker.address], fast_coordinator())
        jobs = evaluation_jobs("kmeans", "gmm", "dps")
        results = ExperimentEngine(fast_config, backend=backend).run(jobs)
        assert results == ExperimentEngine(fast_config).run(jobs)
        # Every job ran on the one multi-slot worker, none fell back.
        assert worker.jobs_done == len(jobs)
        assert "backend_degraded" not in kinds(backend)

    def test_interleaved_jobs_on_one_session(self, fast_config, make_worker):
        """Two jobs admitted on one socket before either result returns."""
        worker = make_worker(concurrency=2)
        jobs = evaluation_jobs("kmeans", "gmm", "dps")[:2]
        with socket.create_connection(
            ("127.0.0.1", worker.port), timeout=5
        ) as sock:
            assert recv_doc(sock)["type"] == "ready"
            send_doc(sock, {"type": "hello", "heartbeat_s": 0.2})
            send_doc(sock, {"type": "config", "config": fast_config.to_doc()})
            assert recv_doc(sock)["type"] == "config_ok"
            for job in jobs:
                send_doc(
                    sock,
                    {
                        "type": "job",
                        "digest": job_digest(fast_config, job),
                        "tokens": list(job.tokens),
                        "key": job.key,
                    },
                )
            outcomes = {}
            while len(outcomes) < len(jobs):
                doc = recv_doc(sock)
                if doc["type"] == "result":
                    outcomes[doc["digest"]] = doc
                else:
                    assert doc["type"] == "heartbeat"
        expected = {job_digest(fast_config, job) for job in jobs}
        assert set(outcomes) == expected
        for doc in outcomes.values():
            assert doc["payload_sha256"] == _payload_sha256(doc["payload"])


class TestRejoin:
    def test_transient_fault_quarantines_then_rejoins(
        self, fast_config, make_worker
    ):
        worker = make_worker(cls=_FlakyFirstSender)
        backend = DistributedBackend([worker.address], fast_coordinator())
        jobs = [reference_job("kmeans")]
        results = ExperimentEngine(fast_config, backend=backend).run(jobs)
        assert results == ExperimentEngine(fast_config).run(jobs)
        seen = kinds(backend)
        # One bad checksum: quarantined, reconnected, served the retry.
        assert "worker_result_invalid" in seen
        assert "worker_quarantined" in seen
        assert "worker_rejoined" in seen
        assert "worker_lost" not in seen

    def test_backend_reusable_across_engine_runs(
        self, fast_config, make_worker
    ):
        worker = make_worker()
        backend = DistributedBackend([worker.address], fast_coordinator())
        engine = ExperimentEngine(fast_config, backend=backend)
        jobs = [reference_job("kmeans"), reference_job("gmm")]
        baseline = ExperimentEngine(fast_config).run(jobs)
        assert engine.run(jobs) == baseline
        # shutdown() said goodbye after run one; run two redials cleanly.
        assert engine.run(jobs) == baseline
        assert kinds(backend).count("worker_joined") == 2


class TestGracefulDrain:
    """SIGTERM-style worker drain: no job stranded behind a lease."""

    def test_drained_fleet_member_never_strands_a_lease(
        self, fast_config, make_worker
    ):
        fleet = [make_worker() for _ in range(2)]
        fleet[0].drain()  # Drained before the campaign ever dials it.
        backend = DistributedBackend(
            [w.address for w in fleet],
            fast_coordinator(lease_timeout_s=20.0),
        )
        sequential = small_campaign(fast_config).run(jobs=1)
        distributed = small_campaign(fast_config).run(backend=backend)
        assert distributed.records == sequential.records
        # Graceful means instant: every declined job was requeued on the
        # error frame, never abandoned to a lease expiry.
        assert "worker_lease_expired" not in kinds(backend)
        assert fleet[0].jobs_done == 0

    def test_drain_mid_session_refuses_then_exits(
        self, fast_config, make_worker
    ):
        worker = make_worker()
        job = reference_job("kmeans")
        with socket.create_connection(
            ("127.0.0.1", worker.port), timeout=5
        ) as sock:
            assert recv_doc(sock)["type"] == "ready"
            send_doc(sock, {"type": "hello", "heartbeat_s": 0.2})
            send_doc(sock, {"type": "config", "config": fast_config.to_doc()})
            assert recv_doc(sock)["type"] == "config_ok"
            worker.drain()
            worker.drain()  # Idempotent, as a signal handler needs.
            send_doc(
                sock,
                {
                    "type": "job",
                    "digest": job_digest(fast_config, job),
                    "tokens": list(job.tokens),
                    "key": job.key,
                },
            )
            reply = recv_doc(sock)
            assert reply["type"] == "error"
            assert "worker draining" in reply["error"]
        # Drained dry, the serve loop exits and releases the listener.
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            try:
                probe = socket.create_connection(
                    ("127.0.0.1", worker.port), timeout=0.2
                )
            except OSError:
                break
            probe.close()
            time.sleep(0.05)
        else:
            pytest.fail("listener still accepting after drain")

    def test_in_flight_job_reports_before_drained_exit(
        self, fast_config, make_worker
    ):
        worker = make_worker()
        job = reference_job("kmeans")
        digest = job_digest(fast_config, job)
        with socket.create_connection(
            ("127.0.0.1", worker.port), timeout=10
        ) as sock:
            assert recv_doc(sock)["type"] == "ready"
            send_doc(sock, {"type": "hello", "heartbeat_s": 0.2})
            send_doc(sock, {"type": "config", "config": fast_config.to_doc()})
            assert recv_doc(sock)["type"] == "config_ok"
            send_doc(
                sock,
                {
                    "type": "job",
                    "digest": digest,
                    "tokens": list(job.tokens),
                    "key": job.key,
                },
            )
            # Only drain once the job is provably admitted, then insist
            # its result still arrives before the worker exits.
            deadline = time.monotonic() + 10.0
            while worker._jobs_seen < 1:
                assert time.monotonic() < deadline, "job never admitted"
                time.sleep(0.01)
            worker.drain()
            while True:
                doc = recv_doc(sock)
                assert doc is not None, "EOF before the in-flight result"
                if doc["type"] == "result":
                    break
                assert doc["type"] == "heartbeat"
            assert doc["digest"] == digest
            assert _payload_sha256(doc["payload"]) == doc["payload_sha256"]
        # The bump lands just after the result frame; give it a moment.
        deadline = time.monotonic() + 2.0
        while worker.jobs_done < 1 and time.monotonic() < deadline:
            time.sleep(0.01)
        assert worker.jobs_done == 1


class TestWorkerSignals:
    def test_sigterm_drains_and_exits_zero(self, tmp_path):
        import os
        import signal
        import subprocess
        import sys
        from pathlib import Path

        import repro

        env = dict(os.environ)
        pkg_root = str(Path(repro.__file__).resolve().parents[1])
        env["PYTHONPATH"] = pkg_root + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "worker", "127.0.0.1:0"],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
        )
        try:
            line = proc.stdout.readline()
            assert "serving" in line, line
            proc.send_signal(signal.SIGTERM)
            out = proc.communicate(timeout=30)[0]
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
        assert proc.returncode == 0
        assert "draining" in out
        assert "stopped after 0 job(s)" in out

"""Figure grouping/aggregation math, isolated from the simulator.

A stub harness returns scripted per-pair evaluations so the harmonic-mean
grouping of each figure generator can be checked against hand-computed
values (the full-stack behaviour is covered by the benchmarks).
"""

import pytest

from repro.experiments.figures import figure4, figure5a, figure5b, figure6
from repro.experiments.harness import PairEvaluation, PairOutcome
from repro.metrics.speedup import hmean


def make_eval(a, b, manager, speedup_a, speedup_b):
    outcome = PairOutcome(
        manager=manager,
        workload_a=a,
        workload_b=b,
        times_a_s=(10.0,),
        times_b_s=(10.0,),
        power_a_w=100.0,
        power_b_w=100.0,
        max_caps_sum_w=0.0,
        sim_time_s=0.0,
    )
    return PairEvaluation(
        outcome=outcome,
        speedup_a=speedup_a,
        speedup_b=speedup_b,
        hmean_speedup=hmean([speedup_a, speedup_b]),
        satisfaction_a=1.0,
        satisfaction_b=1.0,
        fairness=1.0,
    )


class StubHarness:
    """Returns scripted speedups keyed by (a, b, manager)."""

    def __init__(self, table):
        self.table = table
        self.calls = []

    def evaluate_pair(self, a, b, manager):
        self.calls.append((a, b, manager))
        speedup_a, speedup_b = self.table[(a, b, manager)]
        return make_eval(a, b, manager, speedup_a, speedup_b)


class TestFigure4Grouping:
    def test_hmean_over_low_power_partners(self):
        table = {
            ("kmeans", "sort", "dps"): (1.10, 1.0),
            ("kmeans", "wordcount", "dps"): (1.05, 1.0),
        }
        harness = StubHarness(table)
        data = figure4(
            harness,
            managers=("dps",),
            pairs=[("kmeans", "sort"), ("kmeans", "wordcount")],
        )
        assert data.labels == ("kmeans",)
        assert data.series["dps"][0] == pytest.approx(hmean([1.10, 1.05]))

    def test_pair_values_keep_raw_hmeans(self):
        table = {("kmeans", "sort", "dps"): (1.2, 0.9)}
        harness = StubHarness(table)
        data = figure4(harness, managers=("dps",),
                       pairs=[("kmeans", "sort")])
        assert data.pair_values["dps"][("kmeans", "sort")] == pytest.approx(
            hmean([1.2, 0.9])
        )


class TestFigure5Grouping:
    def test_5a_reports_own_speedup(self):
        table = {("bayes", "gmm", "slurm"): (0.9, 1.1)}
        harness = StubHarness(table)
        data = figure5a(harness, managers=("slurm",),
                        mid_workloads=("bayes",))
        assert data.series["slurm"][0] == pytest.approx(0.9)

    def test_5b_reports_paired_hmean(self):
        table = {("bayes", "gmm", "slurm"): (0.9, 1.1)}
        harness = StubHarness(table)
        data = figure5b(harness, managers=("slurm",), workloads=("bayes",))
        assert data.series["slurm"][0] == pytest.approx(hmean([0.9, 1.1]))


class TestFigure6Grouping:
    def test_grouped_both_ways(self):
        table = {
            ("bayes", "ft", "dps"): (1.0, 1.2),
            ("bayes", "mg", "dps"): (1.0, 1.1),
            ("lr", "ft", "dps"): (1.0, 1.3),
        }
        harness = StubHarness(table)
        by_spark, by_npb = figure6(
            harness,
            managers=("dps",),
            pairs=[("bayes", "ft"), ("bayes", "mg"), ("lr", "ft")],
        )
        bayes_pairs = [hmean([1.0, 1.2]), hmean([1.0, 1.1])]
        assert by_spark.series["dps"][0] == pytest.approx(hmean(bayes_pairs))
        ft_pairs = [hmean([1.0, 1.2]), hmean([1.0, 1.3])]
        assert by_npb.series["dps"][0] == pytest.approx(hmean(ft_pairs))

    def test_each_pair_evaluated_once_per_manager(self):
        table = {
            ("bayes", "ft", "dps"): (1.0, 1.0),
            ("bayes", "ft", "slurm"): (1.0, 1.0),
        }
        harness = StubHarness(table)
        figure6(harness, managers=("dps", "slurm"), pairs=[("bayes", "ft")])
        assert len(harness.calls) == 2

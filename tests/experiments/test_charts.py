"""Terminal chart rendering."""

import numpy as np
import pytest

from repro.experiments.charts import bar_chart, line_chart, sparkline


class TestSparkline:
    def test_length_capped_at_width(self):
        out = sparkline(np.arange(200.0), width=50)
        assert len(out) == 50

    def test_short_series_kept(self):
        out = sparkline([1.0, 2.0, 3.0], width=50)
        assert len(out) == 3

    def test_monotone_series_monotone_blocks(self):
        out = sparkline([0.0, 1.0, 2.0, 3.0])
        assert out[0] == "▁" and out[-1] == "█"

    def test_flat_series(self):
        assert sparkline([5.0, 5.0, 5.0]) == "▁▁▁"

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="empty"):
            sparkline([])

    def test_rejects_bad_width(self):
        with pytest.raises(ValueError, match="width"):
            sparkline([1.0], width=0)


class TestLineChart:
    def test_dimensions(self):
        t = np.arange(100.0)
        v = 100 + 50 * np.sin(t / 10)
        out = line_chart(t, v, height=8, width=40, label="power")
        lines = out.splitlines()
        assert lines[0] == "power"
        assert len(lines) == 1 + 8 + 2  # label + rows + axis + time line.

    def test_extremes_plotted(self):
        out = line_chart([0.0, 1.0, 2.0], [0.0, 100.0, 0.0], height=5)
        assert "•" in out

    def test_rejects_mismatched(self):
        with pytest.raises(ValueError, match="equal"):
            line_chart([1.0, 2.0], [1.0])

    def test_rejects_tiny_grid(self):
        with pytest.raises(ValueError, match="height"):
            line_chart([1.0, 2.0], [1.0, 2.0], height=1)


class TestBarChart:
    def test_structure(self):
        out = bar_chart(
            {"dps": [1.05, 0.98], "slurm": [0.92, 1.01]},
            labels=["kmeans", "lda"],
        )
        lines = out.splitlines()
        assert lines[0] == "kmeans:"
        assert sum(1 for l in lines if "dps" in l) == 2
        assert "1.050x" in out

    def test_direction_of_bars(self):
        out = bar_chart({"m": [1.5]}, labels=["w"], width=20)
        bar_line = out.splitlines()[1]
        left, _, right = bar_line.partition("│")
        assert "█" in right and "█" not in left
        out_neg = bar_chart({"m": [0.5]}, labels=["w"], width=20)
        bar_line = out_neg.splitlines()[1]
        left, _, right = bar_line.partition("│")
        assert "█" in left and "█" not in right

    def test_rejects_empty_series(self):
        with pytest.raises(ValueError, match="non-empty"):
            bar_chart({}, labels=["a"])

    def test_rejects_length_mismatch(self):
        with pytest.raises(ValueError, match="values"):
            bar_chart({"m": [1.0]}, labels=["a", "b"])

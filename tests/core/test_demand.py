"""Model-free demand estimator."""

import numpy as np
import pytest

from repro.core.demand import DemandEstimator, DemandEstimatorConfig


def estimator(n=2, max_demand=165.0, **cfg):
    return DemandEstimator(
        n, max_demand, DemandEstimatorConfig(**cfg) if cfg else None
    )


class TestConfig:
    def test_rejects_bad_pin_threshold(self):
        with pytest.raises(ValueError, match="pin_threshold"):
            DemandEstimatorConfig(pin_threshold=0.0)

    def test_rejects_probe_factor_not_above_one(self):
        with pytest.raises(ValueError, match="probe_factor"):
            DemandEstimatorConfig(probe_factor=1.0)

    def test_rejects_bad_decay(self):
        with pytest.raises(ValueError, match="decay"):
            DemandEstimatorConfig(decay=0.0)


class TestVisibleDemand:
    def test_tracks_unpinned_power(self):
        est = estimator(n=1)
        for _ in range(10):
            out = est.update(np.array([80.0]), np.array([165.0]))
        assert out[0] == pytest.approx(80.0, abs=1.0)

    def test_never_below_current_power(self):
        est = estimator(n=1)
        out = est.update(np.array([120.0]), np.array([165.0]))
        assert out[0] >= 120.0


class TestHiddenDemand:
    def test_pinned_unit_probes_above_cap(self):
        est = estimator(n=1)
        caps = np.array([80.0])
        out = est.update(np.array([79.0]), caps)  # 79 >= 0.95*80: pinned.
        assert out[0] > 80.0

    def test_probe_grows_each_step_until_clamp(self):
        est = estimator(n=1)
        caps = np.array([80.0])
        prev = 0.0
        for _ in range(5):
            out = est.update(np.array([79.5]), caps)
            assert out[0] > prev or out[0] == 165.0
            assert out[0] >= prev
            prev = out[0]
        assert prev == pytest.approx(165.0)  # Probe reaches TDP quickly.

    def test_probe_clipped_at_max(self):
        est = estimator(n=1, max_demand=165.0)
        caps = np.array([160.0])
        for _ in range(20):
            out = est.update(np.array([159.0]), caps)
        assert out[0] == pytest.approx(165.0)


class TestDecay:
    def test_estimate_relaxes_after_demand_drops(self):
        est = estimator(n=1)
        caps = np.array([100.0])
        for _ in range(5):
            est.update(np.array([99.0]), caps)  # Pinned: estimate > 100.
        high = est.estimate[0]
        for _ in range(10):
            out = est.update(np.array([40.0]), np.array([165.0]))
        assert out[0] < high
        assert out[0] == pytest.approx(40.0, abs=2.0)


class TestValidation:
    def test_rejects_zero_units(self):
        with pytest.raises(ValueError, match="n_units"):
            DemandEstimator(0, 165.0)

    def test_rejects_bad_max(self):
        with pytest.raises(ValueError, match="max_demand_w"):
            DemandEstimator(2, 0.0)

    def test_rejects_shape_mismatch(self):
        est = estimator(n=2)
        with pytest.raises(ValueError, match="shape"):
            est.update(np.zeros(3), np.zeros(2))

    def test_reset(self):
        est = estimator(n=1)
        est.update(np.array([120.0]), np.array([165.0]))
        est.reset()
        assert est.estimate[0] == 0.0

    def test_estimate_view_readonly(self):
        est = estimator(n=1)
        with pytest.raises(ValueError):
            est.estimate[0] = 1.0

"""Validation behaviour of every configuration dataclass."""

import pytest

from repro.core.config import (
    ClusterSpec,
    DPSConfig,
    KalmanConfig,
    PerfModelConfig,
    PriorityConfig,
    RaplConfig,
    ReadjustConfig,
    SimulationConfig,
    StatelessConfig,
)


class TestStatelessConfig:
    def test_defaults_valid(self):
        cfg = StatelessConfig()
        assert 0 < cfg.dec_threshold < cfg.inc_threshold <= 1

    def test_rejects_dec_threshold_above_inc(self):
        with pytest.raises(ValueError, match="dec_threshold"):
            StatelessConfig(inc_threshold=0.8, dec_threshold=0.9)

    def test_rejects_inc_factor_not_above_one(self):
        with pytest.raises(ValueError, match="inc_factor"):
            StatelessConfig(inc_factor=1.0)

    def test_rejects_dec_factor_out_of_range(self):
        with pytest.raises(ValueError, match="dec_factor"):
            StatelessConfig(dec_factor=1.0)
        with pytest.raises(ValueError, match="dec_factor"):
            StatelessConfig(dec_factor=0.0)

    def test_rejects_threshold_above_one(self):
        with pytest.raises(ValueError, match="inc_threshold"):
            StatelessConfig(inc_threshold=1.5)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            StatelessConfig().inc_factor = 2.0  # type: ignore[misc]


class TestKalmanConfig:
    def test_defaults_valid(self):
        cfg = KalmanConfig()
        assert cfg.process_var > 0 and cfg.measurement_var > 0

    @pytest.mark.parametrize(
        "field", ["process_var", "measurement_var", "initial_var"]
    )
    def test_rejects_nonpositive(self, field):
        with pytest.raises(ValueError, match=field):
            KalmanConfig(**{field: 0.0})


class TestPriorityConfig:
    def test_defaults_valid(self):
        cfg = PriorityConfig()
        assert cfg.deriv_window <= cfg.history_len

    def test_rejects_short_history(self):
        with pytest.raises(ValueError, match="history_len"):
            PriorityConfig(history_len=2)

    def test_rejects_window_beyond_history(self):
        with pytest.raises(ValueError, match="deriv_window"):
            PriorityConfig(history_len=5, deriv_window=6)

    def test_rejects_positive_dec_threshold(self):
        with pytest.raises(ValueError, match="deriv_dec_threshold"):
            PriorityConfig(deriv_dec_threshold=1.0)

    def test_rejects_zero_pp_threshold(self):
        with pytest.raises(ValueError, match="pp_threshold"):
            PriorityConfig(pp_threshold=0)

    def test_rejects_nonpositive_prominence(self):
        with pytest.raises(ValueError, match="peak_prominence"):
            PriorityConfig(peak_prominence=0.0)


class TestReadjustConfig:
    def test_defaults_valid(self):
        cfg = ReadjustConfig()
        assert 0 < cfg.restore_threshold <= 1

    def test_rejects_negative_epsilon(self):
        with pytest.raises(ValueError, match="budget_epsilon"):
            ReadjustConfig(budget_epsilon=-1.0)

    def test_rejects_zero_restore_threshold(self):
        with pytest.raises(ValueError, match="restore_threshold"):
            ReadjustConfig(restore_threshold=0.0)


class TestDPSConfig:
    def test_composes_defaults(self):
        cfg = DPSConfig()
        assert cfg.use_kalman and cfg.use_frequency

    def test_replace_switches(self):
        cfg = DPSConfig().replace(use_kalman=False)
        assert not cfg.use_kalman
        assert DPSConfig().use_kalman  # Original untouched.


class TestClusterSpec:
    def test_paper_defaults(self):
        spec = ClusterSpec()
        assert spec.n_units == 20
        assert spec.budget_w == pytest.approx(20 * 165 * 2 / 3)
        assert spec.constant_cap_w == pytest.approx(110.0)

    def test_rejects_budget_fraction_above_one(self):
        with pytest.raises(ValueError, match="budget_fraction"):
            ClusterSpec(budget_fraction=1.5)

    def test_rejects_min_cap_at_tdp(self):
        with pytest.raises(ValueError, match="min_cap_w"):
            ClusterSpec(min_cap_w=165.0)

    def test_rejects_zero_nodes(self):
        with pytest.raises(ValueError, match="n_nodes"):
            ClusterSpec(n_nodes=0)

    def test_rejects_idle_above_tdp(self):
        with pytest.raises(ValueError, match="idle_power_w"):
            ClusterSpec(idle_power_w=200.0)


class TestPerfModelConfig:
    def test_defaults_valid(self):
        cfg = PerfModelConfig()
        assert cfg.theta >= 1

    def test_rejects_theta_below_one(self):
        with pytest.raises(ValueError, match="theta"):
            PerfModelConfig(theta=0.5)

    def test_rejects_min_rate_out_of_range(self):
        with pytest.raises(ValueError, match="min_rate"):
            PerfModelConfig(min_rate=0.0)
        with pytest.raises(ValueError, match="min_rate"):
            PerfModelConfig(min_rate=1.5)


class TestRaplConfig:
    def test_defaults_valid(self):
        cfg = RaplConfig()
        assert cfg.counter_wrap_uj > 0

    def test_rejects_negative_noise(self):
        with pytest.raises(ValueError, match="noise_std_w"):
            RaplConfig(noise_std_w=-1.0)

    def test_rejects_nonpositive_lag(self):
        with pytest.raises(ValueError, match="lag_tau_s"):
            RaplConfig(lag_tau_s=0.0)


class TestSimulationConfig:
    def test_defaults_valid(self):
        cfg = SimulationConfig()
        assert cfg.dt_s == 1.0

    def test_rejects_nonpositive_time_scale(self):
        with pytest.raises(ValueError, match="time_scale"):
            SimulationConfig(time_scale=0.0)

    def test_rejects_negative_gap(self):
        with pytest.raises(ValueError, match="inter_run_gap_s"):
            SimulationConfig(inter_run_gap_s=-1.0)

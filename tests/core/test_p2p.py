"""Peer-to-peer power manager (Penelope-style baseline)."""

import numpy as np
import pytest

from repro.core.p2p import P2PManager


def bound(n=4, budget=440.0, seed=0, **kwargs):
    mgr = P2PManager(**kwargs)
    mgr.bind(n, budget, max_cap_w=165.0, min_cap_w=30.0,
             rng=np.random.default_rng(seed))
    return mgr


def closed_loop(mgr, demand, steps):
    caps = np.asarray(mgr.caps)
    for _ in range(steps):
        power = np.minimum(np.asarray(demand, dtype=float), caps)
        caps = mgr.step(power)
    return caps


class TestConstruction:
    def test_rejects_inverted_thresholds(self):
        with pytest.raises(ValueError, match="rich_threshold"):
            P2PManager(needy_threshold=0.8, rich_threshold=0.9)

    def test_rejects_bad_trade_fraction(self):
        with pytest.raises(ValueError, match="trade_fraction"):
            P2PManager(trade_fraction=0.0)

    def test_rejects_negative_margin(self):
        with pytest.raises(ValueError, match="donor_margin_w"):
            P2PManager(donor_margin_w=-1.0)


class TestTrading:
    def test_budget_structurally_conserved(self):
        """Trades move power between shares; the sum never changes."""
        mgr = bound()
        rng = np.random.default_rng(3)
        caps = np.asarray(mgr.caps)
        for _ in range(50):
            demand = rng.uniform(10, 165, 4)
            caps = mgr.step(np.minimum(demand, caps))
            assert caps.sum() == pytest.approx(440.0, abs=1e-6)

    def test_power_flows_to_needy_units(self):
        mgr = bound(n=2, budget=240.0)
        caps = closed_loop(mgr, [160.0, 30.0], steps=30)
        assert caps[0] > 140.0
        assert caps[1] < 100.0
        assert mgr.trades > 0

    def test_no_trade_when_everyone_satisfied(self):
        mgr = bound()
        closed_loop(mgr, [50.0, 50.0, 50.0, 50.0], steps=10)
        assert mgr.trades == 0

    def test_donor_keeps_margin(self):
        mgr = bound(n=2, budget=240.0, donor_margin_w=20.0)
        demand = np.array([160.0, 60.0])
        caps = closed_loop(mgr, demand, steps=40)
        # The donor's cap never drops below its draw plus the margin.
        assert caps[1] >= 60.0 + 20.0 - 1e-6

    def test_caps_within_unit_bounds(self):
        mgr = bound()
        rng = np.random.default_rng(5)
        caps = np.asarray(mgr.caps)
        for _ in range(40):
            demand = rng.uniform(10, 165, 4)
            caps = mgr.step(np.minimum(demand, caps))
            assert np.all(caps >= 30.0 - 1e-9)
            assert np.all(caps <= 165.0 + 1e-9)

    def test_odd_unit_count_tolerated(self):
        mgr = bound(n=5, budget=550.0)
        caps = closed_loop(mgr, [160.0, 30.0, 160.0, 30.0, 90.0], steps=20)
        assert caps.shape == (5,)

    def test_slower_than_central_but_converges(self):
        """One partner per step: convergence is slower than MIMD but the
        needy unit still ends near its demand."""
        mgr = bound(n=4, budget=480.0)
        caps = closed_loop(mgr, [160.0, 40.0, 40.0, 40.0], steps=60)
        assert caps[0] > 150.0


class TestEndToEnd:
    def test_runs_in_simulator(self):
        from repro.cluster.cluster import Cluster
        from repro.cluster.simulator import Assignment, Simulation
        from repro.core.config import ClusterSpec, SimulationConfig
        from repro.core.managers import create_manager
        from repro.workloads.registry import get_workload

        spec = ClusterSpec(n_nodes=2, sockets_per_node=2)
        cluster = Cluster(spec)
        sim = Simulation(
            cluster_spec=spec,
            manager=create_manager("p2p"),
            assignments=[
                Assignment(
                    spec=get_workload("sort"),
                    unit_ids=cluster.half_unit_ids(0),
                )
            ],
            target_runs=1,
            sim_config=SimulationConfig(
                time_scale=0.5, max_steps=2000, inter_run_gap_s=0.0
            ),
            seed=2,
        )
        result = sim.run()
        assert not result.truncated
        assert result.max_caps_sum_w <= spec.budget_w * (1 + 1e-6)

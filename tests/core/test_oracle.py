"""Oracle manager: demand-clairvoyant equal-satisfaction allocation."""

import numpy as np
import pytest

from repro.core.oracle import OracleManager


def bound(headroom=1.05, n=4, budget=440.0):
    mgr = OracleManager(headroom=headroom)
    mgr.bind(n, budget, max_cap_w=165.0, min_cap_w=30.0,
             rng=np.random.default_rng(0))
    return mgr


class TestConstruction:
    def test_rejects_headroom_below_one(self):
        with pytest.raises(ValueError, match="headroom"):
            OracleManager(headroom=0.9)

    def test_requires_demand(self):
        mgr = bound()
        with pytest.raises(ValueError, match="demand"):
            mgr.step(np.full(4, 100.0))


class TestFitsBudget:
    def test_grants_demand_plus_headroom(self):
        mgr = bound()
        demand = np.array([50.0, 60.0, 70.0, 80.0])
        caps = mgr.step(demand, demand)
        assert np.all(caps >= demand * 1.05 - 1e-9)

    def test_slack_distributed_fully(self):
        """No budget wasted unless every unit hits TDP."""
        mgr = bound()
        demand = np.full(4, 100.0)
        caps = mgr.step(demand, demand)
        assert caps.sum() == pytest.approx(440.0)

    def test_all_low_demand_caps_at_tdp_bound(self):
        mgr = bound(n=2, budget=340.0)
        caps = mgr.step(np.full(2, 30.0), np.full(2, 160.0))
        assert np.all(caps <= 165.0)


class TestContention:
    def test_equal_satisfaction_scaling(self):
        mgr = bound(n=2, budget=220.0)
        demand = np.array([160.0, 80.0])
        caps = mgr.step(demand, demand)
        # Equal satisfaction: caps proportional to demand.
        assert caps[0] / 160.0 == pytest.approx(caps[1] / 80.0, rel=1e-6)
        assert caps.sum() == pytest.approx(220.0)

    def test_min_cap_water_fill(self):
        """Units scaled below min_cap keep it; others give back budget."""
        mgr = bound(n=3, budget=200.0)
        demand = np.array([160.0, 160.0, 35.0])
        caps = mgr.step(demand, demand)
        assert np.all(caps >= 30.0 - 1e-9)
        assert caps.sum() == pytest.approx(200.0)

    def test_budget_respected_under_extreme_demand(self):
        mgr = bound()
        demand = np.full(4, 165.0)
        caps = mgr.step(demand, demand)
        assert caps.sum() <= 440.0 + 1e-6


class TestFigure1Behaviour:
    def test_reallocates_when_second_node_rises(self):
        """The T3->T4 move of Figure 1: from lopsided to even."""
        mgr = bound(n=2, budget=240.0)
        caps_lopsided = mgr.step(
            np.array([160.0, 30.0]), np.array([160.0, 30.0])
        )
        assert caps_lopsided[0] > 150.0
        caps_even = mgr.step(
            np.array([160.0, 160.0]), np.array([160.0, 160.0])
        )
        assert caps_even[0] == pytest.approx(caps_even[1])
        assert caps_even[0] == pytest.approx(120.0, abs=1.0)

"""Kalman filter bank: initialization, convergence, noise rejection."""

import numpy as np
import pytest

from repro.core.config import KalmanConfig
from repro.core.kalman import KalmanBank


class TestConstruction:
    def test_rejects_zero_units(self):
        with pytest.raises(ValueError, match="n_units"):
            KalmanBank(0)

    def test_initial_variance(self):
        bank = KalmanBank(3, KalmanConfig(initial_var=50.0))
        assert np.all(bank.variance == 50.0)

    def test_estimate_view_is_readonly(self):
        bank = KalmanBank(2)
        with pytest.raises(ValueError):
            bank.estimate[0] = 1.0


class TestFirstUpdate:
    def test_initializes_from_measurement(self):
        bank = KalmanBank(3)
        z = np.array([100.0, 50.0, 75.0])
        est = bank.update(z)
        np.testing.assert_allclose(est, z)

    def test_no_zero_prior_transient(self):
        # If the filter started from a zero prior, the first estimates
        # would be pulled far below the measurement.
        bank = KalmanBank(1)
        est = bank.update(np.array([150.0]))
        assert est[0] == pytest.approx(150.0)


class TestTracking:
    def test_converges_to_constant_signal(self, rng):
        bank = KalmanBank(1, KalmanConfig(process_var=5.0, measurement_var=9.0))
        target = 120.0
        for _ in range(100):
            est = bank.update(np.array([target + rng.normal(0, 3.0)]))
        assert est[0] == pytest.approx(target, abs=4.0)

    def test_reduces_noise_variance(self, rng):
        """Filtered residuals must beat raw measurement noise."""
        bank = KalmanBank(1, KalmanConfig(process_var=2.0, measurement_var=16.0))
        target = 100.0
        raw_err, est_err = [], []
        for _ in range(500):
            z = target + rng.normal(0, 4.0)
            est = bank.update(np.array([z]))
            raw_err.append(z - target)
            est_err.append(est[0] - target)
        assert np.std(est_err[50:]) < 0.6 * np.std(raw_err[50:])

    def test_tracks_step_change_within_few_samples(self):
        bank = KalmanBank(1)
        for _ in range(10):
            bank.update(np.array([60.0]))
        for _ in range(4):
            est = bank.update(np.array([160.0]))
        assert est[0] > 140.0

    def test_units_independent(self):
        bank = KalmanBank(2)
        bank.update(np.array([50.0, 150.0]))
        est = bank.update(np.array([50.0, 150.0]))
        assert est[0] == pytest.approx(50.0, abs=1.0)
        assert est[1] == pytest.approx(150.0, abs=1.0)


class TestValidation:
    def test_rejects_wrong_shape(self):
        bank = KalmanBank(3)
        with pytest.raises(ValueError, match="shape"):
            bank.update(np.zeros(2))

    def test_rejects_nan(self):
        bank = KalmanBank(1)
        with pytest.raises(ValueError, match="non-finite"):
            bank.update(np.array([np.nan]))

    def test_rejects_inf(self):
        bank = KalmanBank(1)
        with pytest.raises(ValueError, match="non-finite"):
            bank.update(np.array([np.inf]))


class TestReset:
    def test_reset_reinitializes(self):
        bank = KalmanBank(1)
        bank.update(np.array([100.0]))
        bank.reset()
        est = bank.update(np.array([40.0]))
        assert est[0] == pytest.approx(40.0)

    def test_update_returns_copy(self):
        bank = KalmanBank(1)
        est = bank.update(np.array([100.0]))
        est[0] = -1.0
        assert bank.estimate[0] == pytest.approx(100.0)


class TestValidationOptOut:
    """``validate=False`` skips the boundary re-scan, nothing else: the
    manager validates every reading once in ``PowerManager.step`` and the
    bank must not silently diverge when it trusts that check."""

    def test_validate_false_is_bit_identical_on_valid_input(self):
        rng = np.random.default_rng(3)
        a = KalmanBank(5, KalmanConfig())
        b = KalmanBank(5, KalmanConfig())
        for _ in range(25):
            z = rng.uniform(30.0, 160.0, size=5)
            np.testing.assert_array_equal(
                a.update(z), b.update(z, validate=False)
            )

    def test_invalid_input_raises_at_both_entry_points(self):
        # Entry point 1: the bank's own boundary.
        bank = KalmanBank(3, KalmanConfig())
        with pytest.raises(ValueError, match="non-finite"):
            bank.update(np.array([1.0, np.nan, 3.0]))
        with pytest.raises(ValueError, match="shape"):
            bank.update(np.array([1.0, 2.0]))
        # Entry point 2: the manager boundary that the hot path's
        # validate=False relies on.
        from repro.core.dps import DPSManager

        manager = DPSManager()
        manager.bind(n_units=3, budget_w=330.0, max_cap_w=165.0,
                     min_cap_w=30.0, dt_s=1.0, rng=np.random.default_rng(0))
        with pytest.raises(ValueError, match="non-finite"):
            manager.step(np.array([1.0, np.nan, 3.0]))
        with pytest.raises(ValueError, match="shape"):
            manager.step(np.array([1.0, 2.0]))

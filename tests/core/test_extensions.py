"""DPS+ and the hierarchical manager (extension managers)."""

import numpy as np
import pytest

from repro.core.dpsplus import DPSPlusManager
from repro.core.hierarchical import HierarchicalManager


def bound(mgr, n=4, budget=440.0, seed=0):
    mgr.bind(n, budget, max_cap_w=165.0, min_cap_w=30.0,
             rng=np.random.default_rng(seed))
    return mgr


def closed_loop(mgr, demand, steps):
    caps = np.asarray(mgr.caps)
    for _ in range(steps):
        power = np.minimum(np.asarray(demand, dtype=float), caps)
        caps = mgr.step(power)
    return caps


class TestDPSPlus:
    def test_rejects_bad_headroom(self):
        with pytest.raises(ValueError, match="headroom"):
            DPSPlusManager(headroom=0.5)

    def test_budget_respected(self):
        mgr = bound(DPSPlusManager())
        rng = np.random.default_rng(1)
        caps = np.asarray(mgr.caps)
        for _ in range(40):
            demand = rng.uniform(10, 165, 4)
            caps = mgr.step(np.minimum(demand, caps))
            assert caps.sum() <= 440.0 + 1e-6

    def test_estimates_hidden_demand(self):
        """A unit pinned at a low cap has its estimate probed upward and
        its cap grown toward its true demand."""
        mgr = bound(DPSPlusManager(), n=2, budget=240.0)
        # Unit 0 hungry (demand 160) while unit 1 idles at 30.
        caps = closed_loop(mgr, [160.0, 30.0], steps=25)
        assert mgr.demand_estimate[0] > 140.0
        assert caps[0] > 140.0

    def test_late_riser_recovers(self):
        """Same Figure 1 scenario as DPS: the late riser must not starve."""
        mgr = bound(DPSPlusManager(), n=2, budget=240.0)
        closed_loop(mgr, [160.0, 30.0], steps=20)
        caps = closed_loop(mgr, [160.0, 160.0], steps=15)
        assert caps[1] > 100.0
        assert abs(caps[0] - caps[1]) < 15.0

    def test_idle_units_keep_headroom(self):
        """The 0.5x-constant-cap floor replaces DPS's restore pass."""
        mgr = bound(DPSPlusManager())
        caps = closed_loop(mgr, [20.0, 20.0, 20.0, 20.0], steps=15)
        assert np.all(caps >= 0.5 * 110.0 - 1e-6)


class TestHierarchical:
    def test_rejects_bad_group_size(self):
        with pytest.raises(ValueError, match="group_size"):
            HierarchicalManager(group_size=0)

    def test_rejects_bad_share(self):
        with pytest.raises(ValueError, match="min_group_share"):
            HierarchicalManager(min_group_share=0.0)

    def test_budget_respected(self):
        mgr = bound(HierarchicalManager(group_size=2))
        rng = np.random.default_rng(2)
        caps = np.asarray(mgr.caps)
        for _ in range(40):
            demand = rng.uniform(10, 165, 4)
            caps = mgr.step(np.minimum(demand, caps))
            assert caps.sum() <= 440.0 + 1e-6
            assert np.all(caps >= 30.0 - 1e-9)

    def test_budget_shifts_toward_hungry_group(self):
        mgr = bound(HierarchicalManager(group_size=2))
        caps = closed_loop(mgr, [160.0, 160.0, 20.0, 20.0], steps=25)
        assert caps[:2].sum() > caps[2:].sum() + 40.0

    def test_quiet_group_keeps_floor_share(self):
        mgr = bound(HierarchicalManager(group_size=2, min_group_share=0.5))
        closed_loop(mgr, [160.0, 160.0, 20.0, 20.0], steps=25)
        # Level 1 guarantees the quiet group half its equal share (110 W);
        # level 2 may cap below it, but the group budget never vanishes —
        # verified through the caps still being above the unit minimum.
        assert np.all(np.asarray(mgr.caps)[2:] >= 20.0)

    def test_group_remainder_absorbed(self):
        mgr = HierarchicalManager(group_size=2)
        mgr.bind(5, 550.0, 165.0, 30.0, rng=np.random.default_rng(0))
        caps = mgr.step(np.full(5, 100.0))
        assert caps.shape == (5,)

    def test_single_group_degenerates_to_mimd(self):
        """With one group, level 1 is a no-op and behaviour matches the
        flat stateless manager."""
        from repro.core.slurm import SlurmManager

        hier = HierarchicalManager(group_size=4)
        flat = SlurmManager()
        for mgr, seed in ((hier, 7), (flat, 7)):
            bound(mgr, seed=seed)
        demand = np.array([160.0, 30.0, 150.0, 40.0])
        hier_caps = closed_loop(hier, demand, steps=15)
        flat_caps = closed_loop(flat, demand, steps=15)
        np.testing.assert_allclose(hier_caps, flat_caps, atol=1e-6)

"""Cap-readjusting module (paper Algorithms 3-4)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import ReadjustConfig
from repro.core.readjust import readjust, restore

CFG = ReadjustConfig(restore_threshold=0.8, budget_epsilon=1.0)


class TestRestore:
    def test_restores_when_all_quiet(self):
        result = restore(
            power_w=np.array([40.0, 50.0]),
            caps_w=np.array([60.0, 150.0]),
            initial_cap_w=110.0,
            config=CFG,
        )
        assert result.restored
        np.testing.assert_allclose(result.caps, [110.0, 110.0])

    def test_no_restore_when_any_unit_busy(self):
        result = restore(
            power_w=np.array([40.0, 100.0]),  # 100 > 0.8 * 110.
            caps_w=np.array([60.0, 150.0]),
            initial_cap_w=110.0,
            config=CFG,
        )
        assert not result.restored
        np.testing.assert_allclose(result.caps, [60.0, 150.0])

    def test_threshold_boundary(self):
        # Exactly at the threshold is not "above": restore still fires.
        result = restore(
            power_w=np.array([88.0]),
            caps_w=np.array([50.0]),
            initial_cap_w=110.0,
            config=CFG,
        )
        assert result.restored

    def test_input_not_mutated(self):
        caps = np.array([60.0])
        restore(np.array([10.0]), caps, 110.0, CFG)
        assert caps[0] == 60.0

    def test_rejects_bad_initial_cap(self):
        with pytest.raises(ValueError, match="initial_cap_w"):
            restore(np.array([10.0]), np.array([60.0]), 0.0, CFG)

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError, match="shape"):
            restore(np.array([10.0, 20.0]), np.array([60.0]), 110.0, CFG)


class TestReadjustGrant:
    """Leftover budget goes to high-priority units, inverse-cap weighted."""

    def test_noop_after_restore(self):
        caps = np.array([110.0, 110.0])
        out = readjust(
            caps, np.array([True, True]), 400.0, 165.0, restored=True,
            config=CFG,
        )
        np.testing.assert_allclose(out, caps)

    def test_grant_only_to_high_priority(self):
        out = readjust(
            np.array([100.0, 100.0]),
            np.array([True, False]),
            budget_w=260.0,
            max_cap_w=165.0,
            restored=False,
            config=CFG,
        )
        assert out[0] == pytest.approx(160.0)
        assert out[1] == pytest.approx(100.0)

    def test_lower_capped_unit_gets_more(self):
        out = readjust(
            np.array([50.0, 100.0]),
            np.array([True, True]),
            budget_w=180.0,  # 30 W leftover.
            max_cap_w=165.0,
            restored=False,
            config=CFG,
        )
        grant0 = out[0] - 50.0
        grant1 = out[1] - 100.0
        assert grant0 + grant1 == pytest.approx(30.0)
        assert grant0 == pytest.approx(2 * grant1)  # Inverse-cap weights.

    def test_clipped_grant_recycled(self):
        """Budget clipped at one unit's max flows to the other."""
        out = readjust(
            np.array([160.0, 60.0]),
            np.array([True, True]),
            budget_w=300.0,  # 80 W leftover, unit 0 can absorb only 5.
            max_cap_w=165.0,
            restored=False,
            config=CFG,
        )
        assert out[0] == pytest.approx(165.0)
        assert out[1] == pytest.approx(135.0)

    def test_no_high_priority_units_noop(self):
        caps = np.array([80.0, 90.0])
        out = readjust(
            caps, np.array([False, False]), 400.0, 165.0, restored=False,
            config=CFG,
        )
        np.testing.assert_allclose(out, caps)

    def test_all_at_max_leaves_budget_unassigned(self):
        caps = np.array([165.0, 165.0])
        out = readjust(
            caps, np.array([True, True]), 500.0, 165.0, restored=False,
            config=CFG,
        )
        np.testing.assert_allclose(out, caps)


class TestReadjustEqualize:
    """Budget exhausted: equalize the high-priority units' caps."""

    def test_equalizes_high_priority(self):
        out = readjust(
            np.array([160.0, 60.0, 80.0]),
            np.array([True, True, False]),
            budget_w=300.0,  # sum(caps)=300 -> no leftover.
            max_cap_w=165.0,
            restored=False,
            config=CFG,
        )
        assert out[0] == pytest.approx(110.0)
        assert out[1] == pytest.approx(110.0)
        assert out[2] == pytest.approx(80.0)  # Low priority untouched.

    def test_equalize_preserves_total(self):
        caps = np.array([150.0, 70.0, 100.0, 80.0])
        prio = np.array([True, True, True, False])
        out = readjust(caps, prio, float(caps.sum()), 165.0, False, CFG)
        assert out.sum() == pytest.approx(caps.sum())

    def test_epsilon_treats_tiny_leftover_as_exhausted(self):
        caps = np.array([150.0, 70.0])
        out = readjust(
            caps,
            np.array([True, True]),
            budget_w=220.5,  # Only 0.5 W leftover < epsilon 1.0.
            max_cap_w=165.0,
            restored=False,
            config=CFG,
        )
        # The equalize branch runs: caps average to 110 each (the tiny
        # leftover is not distributed — it is below the epsilon).
        np.testing.assert_allclose(out, [110.0, 110.0])

    def test_equalized_cap_clipped_at_max(self):
        out = readjust(
            np.array([165.0, 164.0]),
            np.array([True, True]),
            budget_w=329.0,
            max_cap_w=165.0,
            restored=False,
            config=CFG,
        )
        assert np.all(out <= 165.0)


@st.composite
def waterfill_cases(draw):
    """Inputs that land in the water-fill branch: some high-priority
    unit exists and the leftover budget exceeds the epsilon."""
    n = draw(st.integers(2, 8))
    caps = np.asarray(
        draw(
            st.lists(st.floats(1.0, 165.0), min_size=n, max_size=n)
        ),
        dtype=np.float64,
    )
    prio = np.asarray(
        draw(st.lists(st.booleans(), min_size=n, max_size=n)), dtype=bool
    )
    if not prio.any():
        prio[draw(st.integers(0, n - 1))] = True
    leftover = draw(st.floats(1.5, 300.0))
    return caps, prio, float(caps.sum()) + leftover


class TestWaterfillProperties:
    """Conservation invariants of the water-fill grant loop — the same
    contract the runtime ``readjust-conservation`` monitor enforces."""

    @given(waterfill_cases())
    @settings(max_examples=200, deadline=None)
    def test_never_hands_out_more_than_leftover(self, case):
        caps, prio, budget = case
        out = readjust(caps, prio, budget, 165.0, restored=False, config=CFG)
        handed = float(out.sum()) - float(caps.sum())
        assert handed >= -1e-9
        assert handed <= budget - float(caps.sum()) + 1e-6

    @given(waterfill_cases())
    @settings(max_examples=200, deadline=None)
    def test_never_shrinks_high_priority_and_never_touches_low(self, case):
        caps, prio, budget = case
        out = readjust(caps, prio, budget, 165.0, restored=False, config=CFG)
        assert np.all(out[prio] >= caps[prio] - 1e-9)
        np.testing.assert_array_equal(out[~prio], caps[~prio])
        assert np.all(out <= 165.0 + 1e-9)


class TestValidation:
    def test_shape_mismatch(self):
        with pytest.raises(ValueError, match="shape"):
            readjust(
                np.array([1.0, 2.0]), np.array([True]), 100.0, 165.0,
                False, CFG,
            )


class TestSaturationTolerance:
    """The water-fill's pre-filter and in-loop refilter use the same
    saturation tolerance (``SATURATION_EPS_W``): a unit within it of the
    per-unit maximum is excluded up front, so a cap a hair below TDP never
    costs a full grant pass for a ~0 W grant."""

    def test_unit_just_below_tdp_gets_no_noise_grant(self):
        # Unit 0 sits 1e-13 W below TDP — any grant it could absorb is
        # numerical noise.  The mismatched-tolerance bug let it through the
        # first filter, spending a pass on it before the refilter caught it.
        caps = np.array([165.0 - 1e-13, 100.0, 80.0])
        prio = np.array([True, True, False])
        out = readjust(caps, prio, budget_w=400.0, max_cap_w=165.0,
                       restored=False, config=CFG)
        # The near-saturated cap is untouched to the last bit; the leftover
        # goes to the other high-priority unit.
        assert out[0] == caps[0]
        assert out[1] > caps[1]
        assert out[2] == caps[2]

    def test_all_high_priority_saturated_terminates_unchanged(self):
        caps = np.array([165.0 - 1e-13, 165.0, 40.0])
        prio = np.array([True, True, False])
        out = readjust(caps, prio, budget_w=500.0, max_cap_w=165.0,
                       restored=False, config=CFG)
        np.testing.assert_array_equal(out, caps)

"""DPS manager: closed-loop module interplay (paper §4.3-4.4)."""

import numpy as np
import pytest

from repro.core.config import DPSConfig, PriorityConfig, ReadjustConfig
from repro.core.dps import DPSManager


def bound(config=None, n=2, budget=240.0, seed=0):
    mgr = DPSManager(config or DPSConfig())
    mgr.bind(n, budget, max_cap_w=165.0, min_cap_w=0.0,
             rng=np.random.default_rng(seed))
    return mgr


def closed_loop(mgr, demand, steps):
    caps = np.asarray(mgr.caps)
    for _ in range(steps):
        power = np.minimum(np.asarray(demand, dtype=float), caps)
        caps = mgr.step(power)
    return caps


class TestPipeline:
    def test_last_info_populated(self):
        mgr = bound()
        assert mgr.last_info is None
        mgr.step(np.array([50.0, 50.0]))
        info = mgr.last_info
        assert info is not None
        assert info.estimate_w.shape == (2,)
        assert info.caps_w.shape == (2,)

    def test_priority_exposed(self):
        mgr = bound()
        mgr.step(np.array([50.0, 50.0]))
        assert mgr.priority.shape == (2,)

    def test_budget_respected_always(self):
        mgr = bound(n=4, budget=440.0)
        rng = np.random.default_rng(3)
        caps = np.asarray(mgr.caps)
        for _ in range(60):
            demand = rng.uniform(10, 165, size=4)
            caps = mgr.step(np.minimum(demand, caps))
            assert caps.sum() <= 440.0 + 1e-6


class TestRestore:
    def test_quiet_system_restores_constant_caps(self):
        mgr = bound()
        # Drive one unit hot so caps diverge, then let everything idle.
        closed_loop(mgr, [160.0, 30.0], steps=15)
        caps = closed_loop(mgr, [30.0, 30.0], steps=12)
        np.testing.assert_allclose(caps, [120.0, 120.0], atol=0.1)
        assert mgr.last_info is not None and mgr.last_info.restored

    def test_busy_system_does_not_restore(self):
        mgr = bound()
        closed_loop(mgr, [160.0, 30.0], steps=15)
        assert mgr.last_info is not None and not mgr.last_info.restored


class TestLowerBound:
    def test_late_riser_recovers_unlike_slurm(self):
        """The Figure 1 resolution: after node 1 rises, DPS re-equalizes
        toward the constant cap instead of starving it."""
        mgr = bound()
        closed_loop(mgr, [160.0, 30.0], steps=20)
        caps = closed_loop(mgr, [160.0, 160.0], steps=15)
        assert caps[1] > 110.0  # At or above the constant cap (120).
        assert abs(caps[0] - caps[1]) < 10.0

    def test_capped_riser_detected_via_dynamics(self):
        """Node 1's rise is clipped at its own low cap; the derivative of
        the small visible rise must still reclassify it high priority."""
        mgr = bound()
        closed_loop(mgr, [160.0, 30.0], steps=20)
        closed_loop(mgr, [160.0, 160.0], steps=10)
        assert bool(mgr.priority[1])


class TestAblationSwitches:
    def test_without_kalman_uses_raw_power(self):
        cfg = DPSConfig(use_kalman=False)
        mgr = bound(cfg)
        mgr.step(np.array([100.0, 100.0]))
        info = mgr.last_info
        assert info is not None
        # The Kalman estimate is still computed (for introspection), but
        # the pipeline consumed the raw reading; with identical first-step
        # behaviour they coincide, so drive a second differing step.
        mgr.step(np.array([50.0, 150.0]))
        assert mgr.last_info is not None

    def test_without_frequency_oscillation_not_pinned(self):
        cfg = DPSConfig(use_frequency=False)
        mgr = bound(cfg)
        for t in range(24):
            level = 150.0 if t % 4 < 2 else 60.0
            caps = mgr.step(
                np.minimum(np.array([level, 60.0]), np.asarray(mgr.caps))
            )
        assert mgr.last_info is not None
        assert not mgr.last_info.high_freq.any()

    def test_with_frequency_oscillation_pinned(self):
        mgr = bound()
        for t in range(24):
            level = 150.0 if t % 4 < 2 else 60.0
            mgr.step(
                np.minimum(np.array([level, 60.0]), np.asarray(mgr.caps))
            )
        assert mgr.last_info is not None
        assert mgr.last_info.high_freq[0]


class TestDeterminism:
    def test_same_seed_same_trajectory(self):
        def run(seed):
            mgr = bound(seed=seed, n=4, budget=440.0)
            rng = np.random.default_rng(77)
            caps = np.asarray(mgr.caps)
            out = []
            for _ in range(30):
                demand = rng.uniform(20, 160, size=4)
                caps = mgr.step(np.minimum(demand, caps))
                out.append(caps.copy())
            return np.asarray(out)

        np.testing.assert_allclose(run(5), run(5))


class TestWarmupBehaviour:
    def test_acts_stateless_before_history_fills(self):
        """During the deriv_window warm-up DPS must still respect budget
        and produce sane caps (the §6.5 ~20 s deployment window)."""
        cfg = DPSConfig(priority=PriorityConfig(deriv_window=6))
        mgr = bound(cfg)
        caps = mgr.step(np.array([150.0, 30.0]))
        assert caps.sum() <= 240.0 + 1e-9
        assert np.all(caps > 0)

    def test_custom_restore_threshold(self):
        # 70 W of draw is quiet under the 0.8 default (< 96 W) but busy
        # under a 0.5 threshold (> 60 W): restoration must stay blocked.
        cfg = DPSConfig(readjust=ReadjustConfig(restore_threshold=0.5))
        mgr = bound(cfg)
        closed_loop(mgr, [160.0, 30.0], steps=10)
        caps = closed_loop(mgr, [70.0, 30.0], steps=10)
        assert mgr.last_info is not None and not mgr.last_info.restored
        assert caps.sum() <= 240.0 + 1e-9

        default = bound()
        closed_loop(default, [160.0, 30.0], steps=10)
        closed_loop(default, [70.0, 30.0], steps=10)
        assert default.last_info is not None and default.last_info.restored

"""SLURM stateless manager: MIMD behaviour and the starvation failure mode."""

import numpy as np
import pytest

from repro.core.slurm import SlurmManager


def bound(n=2, budget=240.0):
    mgr = SlurmManager()
    mgr.bind(n, budget, max_cap_w=165.0, min_cap_w=0.0,
             rng=np.random.default_rng(0))
    return mgr


def closed_loop(mgr, demand, steps):
    """Step the manager against power = min(demand, caps)."""
    caps = np.asarray(mgr.caps)
    for _ in range(steps):
        power = np.minimum(demand, caps)
        caps = mgr.step(power)
    return caps


class TestChasing:
    def test_caps_track_idle_unit_down(self):
        mgr = bound()
        caps = closed_loop(mgr, np.array([30.0, 30.0]), steps=15)
        assert np.all(caps < 40.0)

    def test_caps_grow_for_hungry_unit(self):
        mgr = bound()
        caps = closed_loop(mgr, np.array([160.0, 30.0]), steps=20)
        assert caps[0] > 150.0

    def test_budget_always_respected(self):
        mgr = bound()
        rng = np.random.default_rng(5)
        caps = np.asarray(mgr.caps)
        for _ in range(50):
            demand = rng.uniform(10, 165, size=2)
            power = np.minimum(demand, caps)
            caps = mgr.step(power)
            assert caps.sum() <= 240.0 + 1e-9


class TestStarvation:
    def test_late_riser_starves(self):
        """The Figure 1 story: node 1 rising after node 0 holds the budget
        stays starved — stateless decisions see only power-at-cap."""
        mgr = bound()
        # Phase 1: node 0 grabs the surplus while node 1 idles.
        closed_loop(mgr, np.array([160.0, 30.0]), steps=20)
        # Phase 2: node 1's demand rises; 20 more steps change little.
        caps = closed_loop(mgr, np.array([160.0, 160.0]), steps=20)
        assert caps[1] < 100.0  # Still far below the fair 120 W.
        assert caps[0] > 140.0

    def test_high_frequency_demand_throttled(self):
        """A bursty unit is always capped low when its burst arrives."""
        mgr = bound(n=1, budget=120.0)
        burst_caps = []
        caps = np.asarray(mgr.caps)
        for t in range(40):
            demand = 150.0 if t % 8 < 2 else 40.0
            power = min(demand, float(caps[0]))
            caps = mgr.step(np.array([power]))
            if t % 8 == 0 and t > 8:
                burst_caps.append(float(caps[0]))
        # At each burst arrival the cap has been chased down well below
        # the 120 W budget the unit could have had.
        assert np.mean(burst_caps) < 80.0


class TestDeterminism:
    def test_same_seed_same_trajectory(self):
        def run(seed):
            mgr = SlurmManager()
            mgr.bind(4, 440.0, 165.0, 0.0, rng=np.random.default_rng(seed))
            caps = np.asarray(mgr.caps)
            out = []
            # Unit 0 idles and frees budget each step; the other three
            # compete for it in random order.
            demand = np.array([30.0, 150.0, 150.0, 150.0])
            for _ in range(10):
                power = np.minimum(demand, caps)
                caps = mgr.step(power)
                out.append(caps.copy())
            return np.asarray(out)

        np.testing.assert_allclose(run(1), run(1))
        assert not np.allclose(run(1), run(2))

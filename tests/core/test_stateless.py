"""MIMD stateless allocator (paper Algorithm 1)."""

import numpy as np
import pytest

from repro.core.config import StatelessConfig
from repro.core.stateless import mimd_step

CFG = StatelessConfig()  # inc 0.95 / dec 0.85, x1.10 / x0.90


def run(power, caps, budget=1000.0, max_cap=165.0, min_cap=0.0, cfg=CFG, seed=0):
    return mimd_step(
        np.asarray(power, dtype=float),
        np.asarray(caps, dtype=float),
        budget,
        max_cap,
        min_cap,
        cfg,
        np.random.default_rng(seed),
    )


class TestDecrease:
    def test_idle_unit_cap_lowered(self):
        result = run(power=[50.0], caps=[110.0])
        # power < 0.85 * 110: cap drops to max(power, 0.9 * cap) = 99.
        assert result.caps[0] == pytest.approx(99.0)
        assert result.changed[0]

    def test_drops_directly_to_power_when_higher(self):
        result = run(power=[105.0], caps=[160.0])
        # 0.9 * 160 = 144 > 105, so multiplicative decrease applies.
        assert result.caps[0] == pytest.approx(144.0)

    def test_deep_idle_caps_at_power(self):
        result = run(power=[100.0], caps=[108.0])
        # 100 < 0.85*108=91.8? No — no decrease.
        assert result.caps[0] == pytest.approx(108.0)
        assert not result.changed[0]

    def test_respects_min_cap(self):
        result = run(power=[1.0], caps=[40.0], min_cap=30.0)
        assert result.caps[0] >= 30.0


class TestIncrease:
    def test_capped_unit_grows_multiplicatively(self):
        result = run(power=[109.0], caps=[110.0], budget=400.0)
        assert result.caps[0] == pytest.approx(121.0)  # 110 * 1.1
        assert result.changed[0]

    def test_growth_limited_by_budget(self):
        result = run(power=[109.0, 109.0], caps=[110.0, 110.0], budget=225.0)
        # Only 5 W of headroom total across both units.
        assert result.caps.sum() == pytest.approx(225.0)
        assert result.avail_budget_w == pytest.approx(0.0)

    def test_growth_limited_by_max_cap(self):
        result = run(power=[160.0], caps=[160.0], budget=400.0, max_cap=165.0)
        assert result.caps[0] == pytest.approx(165.0)

    def test_no_growth_without_budget(self):
        result = run(power=[109.0], caps=[110.0], budget=110.0)
        assert result.caps[0] == pytest.approx(110.0)

    def test_below_threshold_unchanged(self):
        result = run(power=[100.0], caps=[110.0], budget=400.0)
        # 100 is between dec (93.5) and inc (104.5) thresholds.
        assert result.caps[0] == pytest.approx(110.0)
        assert not result.changed[0]


class TestBudgetInvariant:
    @pytest.mark.parametrize("seed", range(5))
    def test_never_exceeds_budget(self, seed, rng):
        power = rng.uniform(20, 165, size=8)
        caps = rng.uniform(60, 165, size=8)
        budget = float(caps.sum())  # Start exactly at budget.
        result = run(power, caps, budget=budget, seed=seed)
        assert result.caps.sum() <= budget + 1e-9

    def test_freed_budget_measured(self):
        result = run(power=[10.0, 160.0], caps=[110.0, 165.0], budget=275.0)
        # Unit 0 freed budget; unit 1 already at max cap.
        assert result.avail_budget_w > 0


class TestRandomOrder:
    def test_increase_order_varies_with_rng(self):
        # Two capped-out units compete for 11 W of headroom; who gets it
        # depends on the permutation, so distinct seeds must disagree
        # somewhere.
        outcomes = set()
        for seed in range(10):
            result = run(
                power=[110.0, 110.0],
                caps=[110.0, 110.0],
                budget=231.0,
                seed=seed,
            )
            outcomes.add(tuple(np.round(result.caps, 6)))
        assert len(outcomes) > 1

    def test_input_caps_not_mutated(self):
        caps = np.array([110.0])
        run(power=[50.0], caps=caps)
        assert caps[0] == 110.0


class TestValidation:
    def test_shape_mismatch(self):
        with pytest.raises(ValueError, match="shape"):
            run(power=[1.0, 2.0], caps=[1.0])

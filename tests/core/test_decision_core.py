"""Loop-oracle equivalence of the array-native decision core.

The vectorized decision path (batched peak counter, boolean-mask priority
classifier, accumulate-chain MIMD increase pass) must be *bit-exact*
against the original per-unit implementations, which are kept as the
``decision_core="loop"`` oracle.  Any divergence is a latent bug in one of
the two — never something to paper over with a tolerance — so every
assertion here is exact equality.

The suite drives randomized histories, configurations, budgets, and
priorities through both cores at three levels: the stateless kernels
(peak counts, MIMD), the stateful priority classifier, and full
DPS/SLURM manager runs including snapshot/restore across cores.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import _native
from repro.core.config import (
    DPSConfig,
    PriorityConfig,
    StatelessConfig,
)
from repro.core.dps import DPSManager
from repro.core.peaks import (
    _count_batch,
    _count_walk,
    count_prominent_peaks_multi,
)
from repro.core.priority import PriorityModule
from repro.core.slurm import SlurmManager
from repro.core.stateless import mimd_step

# Power-like values on a coarse grid so ties, plateaus, and exact
# threshold hits are common — the cases where a vectorization shortcut
# would first diverge from the sequential walk.
_grid_power = st.integers(min_value=0, max_value=660).map(lambda v: v / 4.0)
_smooth_power = st.floats(
    min_value=0.0, max_value=165.0, allow_nan=False, allow_infinity=False
)
_power_value = st.one_of(_grid_power, _smooth_power)


@st.composite
def histories(draw, min_len=1, max_len=24, max_units=24):
    h = draw(st.integers(min_value=min_len, max_value=max_len))
    n = draw(st.integers(min_value=1, max_value=max_units))
    flat = draw(
        st.lists(_power_value, min_size=h * n, max_size=h * n)
    )
    return np.array(flat, dtype=np.float64).reshape(h, n)


class TestPeakCountEquivalence:
    @given(
        history=histories(),
        prominence=st.one_of(
            st.floats(min_value=0.25, max_value=40.0, allow_nan=False),
            st.sampled_from([0.25, 1.0, 5.0, 20.0]),
        ),
    )
    @settings(max_examples=150, deadline=None)
    def test_all_three_implementations_agree(self, history, prominence):
        """Native kernel, NumPy batch fallback, and per-column walk all
        return identical counts — not close, identical."""
        oracle = count_prominent_peaks_multi(
            history, prominence, core="loop"
        )
        vectorized = count_prominent_peaks_multi(
            history, prominence, core="vectorized"
        )
        np.testing.assert_array_equal(vectorized, oracle)
        # The NumPy fallback must agree even on hosts where the native
        # kernel is available, so exercise it explicitly.
        batch = np.empty(history.shape[1], dtype=np.intp)
        _count_batch(history, float(prominence), batch)
        np.testing.assert_array_equal(batch, oracle)

    @given(history=histories(min_len=3))
    @settings(max_examples=60, deadline=None)
    def test_kernel_std_matches_sequential_sum(self, history):
        """The fused kernel's std uses sequential per-column summation;
        it must equal the plain-Python sequential definition bit for bit
        (both cores consume the same provider, so this pins the shared
        feature itself)."""
        kernel = _native.peak_features()
        if kernel is None:
            pytest.skip("no native kernel on this host")
        h, n = history.shape
        out = np.empty(n)
        kernel(np.ascontiguousarray(history), 1.0, None, out)
        for c in range(n):
            col = history[:, c].tolist()
            mean = sum(col) / h
            var = 0.0
            for v in col:
                d = v - mean
                var += d * d
            assert out[c] == np.sqrt(np.float64(var / h))


class TestMimdEquivalence:
    @given(
        n=st.integers(min_value=1, max_value=60),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        budget_scale=st.floats(min_value=0.1, max_value=1.5),
        inc_threshold=st.floats(min_value=0.5, max_value=0.99),
        inc_factor=st.floats(min_value=1.01, max_value=1.5),
    )
    @settings(max_examples=150, deadline=None)
    def test_caps_changed_and_leftover_bit_exact(
        self, n, seed, budget_scale, inc_threshold, inc_factor
    ):
        rng = np.random.default_rng(seed)
        caps = rng.uniform(30.0, 165.0, n)
        power = rng.uniform(0.0, 170.0, n)
        # Exact threshold hits: the admission test is power > cap * thr,
        # so equality must fall on the same side in both cores.
        if n >= 2:
            power[0] = caps[0] * inc_threshold
        config = StatelessConfig(
            inc_threshold=inc_threshold,
            dec_threshold=min(0.85, inc_threshold - 0.01),
            inc_factor=inc_factor,
        )
        budget = float(budget_scale * caps.sum())
        results = {
            core: mimd_step(
                power, caps, budget, 165.0, 30.0, config,
                np.random.default_rng(seed), core=core,
            )
            for core in ("loop", "vectorized")
        }
        np.testing.assert_array_equal(
            results["vectorized"].caps, results["loop"].caps
        )
        np.testing.assert_array_equal(
            results["vectorized"].changed, results["loop"].changed
        )
        assert (
            results["vectorized"].avail_budget_w
            == results["loop"].avail_budget_w
        )

    def test_partial_grant_at_budget_boundary(self):
        """Pinned: the one unit straddling the budget boundary receives
        exactly the loop's remainder, and the rng stream advances the
        same way in both cores."""
        caps = np.full(8, 100.0)
        power = np.full(8, 100.0)  # all want increase
        config = StatelessConfig()
        budget = float(caps.sum()) + 13.7  # covers one full grant + change
        out = {
            core: mimd_step(
                power, caps, budget, 165.0, 30.0, config,
                np.random.default_rng(5), core=core,
            )
            for core in ("loop", "vectorized")
        }
        np.testing.assert_array_equal(
            out["vectorized"].caps, out["loop"].caps
        )
        assert out["vectorized"].avail_budget_w == out["loop"].avail_budget_w


def _pair(n, priority_config=None, use_frequency=True):
    return {
        core: PriorityModule(
            n,
            priority_config or PriorityConfig(),
            use_frequency=use_frequency,
            core=core,
        )
        for core in ("loop", "vectorized")
    }


class TestPriorityEquivalence:
    @given(
        n=st.integers(min_value=1, max_value=20),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        steps=st.integers(min_value=1, max_value=8),
        use_frequency=st.booleans(),
    )
    @settings(max_examples=100, deadline=None)
    def test_flags_bit_exact_over_random_runs(
        self, n, seed, steps, use_frequency
    ):
        rng = np.random.default_rng(seed)
        mods = _pair(n, use_frequency=use_frequency)
        for _ in range(steps):
            h = int(rng.integers(1, 24))
            scale = float(rng.uniform(0.5, 30.0))
            hist = np.cumsum(rng.normal(0.0, scale, (h, n)), axis=0) + 100.0
            if rng.random() < 0.3:
                hist = np.round(hist * 4.0) / 4.0  # force ties/plateaus
            outs = {
                core: mod.update(hist, 1.0) for core, mod in mods.items()
            }
            np.testing.assert_array_equal(
                outs["vectorized"], outs["loop"]
            )
            np.testing.assert_array_equal(
                mods["vectorized"].high_freq, mods["loop"].high_freq
            )

    def test_warmup_history_keeps_priorities_in_both_cores(self):
        """Shorter history than the derivative window: no classification,
        both cores return the prior flags untouched."""
        mods = _pair(4)
        short = np.full((1, 4), 100.0)  # < deriv_window
        for core, mod in mods.items():
            out = mod.update(short, 1.0)
            np.testing.assert_array_equal(out, np.zeros(4, dtype=bool))

    def test_all_high_frequency_population(self):
        """Every unit oscillating hard: all go (and stay) high-frequency
        in both cores, including the clear-check path the step after."""
        n = 6
        mods = _pair(n)
        t = np.arange(20)[:, None]
        hist = 100.0 + 40.0 * np.where(t % 2 == 0, 1.0, -1.0) * np.ones(
            (20, n)
        )
        for _ in range(3):
            outs = {
                core: mod.update(hist, 1.0) for core, mod in mods.items()
            }
            np.testing.assert_array_equal(outs["vectorized"], outs["loop"])
            assert mods["loop"].high_freq.all()
            assert mods["vectorized"].high_freq.all()
            assert outs["loop"].all()


def _run_manager(factory, powers, snapshot_at=None, restore_into=None):
    """Drive a manager over a power sequence, returning per-step caps.

    When ``snapshot_at``/``restore_into`` are given, state is snapshotted
    at that step and restored into a *fresh* manager built by
    ``restore_into`` (possibly with the other decision core), which then
    finishes the run — exercising cross-core snapshot parity.
    """
    manager = factory()
    caps = []
    for i, p in enumerate(powers):
        if snapshot_at is not None and i == snapshot_at:
            state = manager.snapshot()
            manager = restore_into()
            manager.restore(state)
        caps.append(manager.step(p, p).copy())
    return caps


def _bind(manager, n, seed):
    manager.bind(
        n_units=n,
        budget_w=110.0 * n,
        max_cap_w=165.0,
        min_cap_w=30.0,
        dt_s=1.0,
        rng=np.random.default_rng(seed),
    )
    return manager


class TestManagerParity:
    @given(
        n=st.integers(min_value=1, max_value=16),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        steps=st.integers(min_value=1, max_value=30),
    )
    @settings(max_examples=40, deadline=None)
    def test_dps_run_bit_exact(self, n, seed, steps):
        rng = np.random.default_rng(seed)
        powers = [rng.uniform(20.0, 165.0, n) for _ in range(steps)]

        def factory(core):
            return lambda: _bind(
                DPSManager(DPSConfig(decision_core=core)), n, seed
            )

        loop_caps = _run_manager(factory("loop"), powers)
        vec_caps = _run_manager(factory("vectorized"), powers)
        for lc, vc in zip(loop_caps, vec_caps):
            np.testing.assert_array_equal(vc, lc)

    @given(
        n=st.integers(min_value=1, max_value=16),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_slurm_run_bit_exact(self, n, seed):
        rng = np.random.default_rng(seed)
        powers = [rng.uniform(20.0, 165.0, n) for _ in range(12)]

        def factory(core):
            return lambda: _bind(
                SlurmManager(decision_core=core), n, seed
            )

        loop_caps = _run_manager(factory("loop"), powers)
        vec_caps = _run_manager(factory("vectorized"), powers)
        for lc, vc in zip(loop_caps, vec_caps):
            np.testing.assert_array_equal(vc, lc)

    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        snapshot_at=st.integers(min_value=1, max_value=24),
    )
    @settings(max_examples=30, deadline=None)
    def test_snapshot_restore_swaps_cores_mid_run(self, seed, snapshot_at):
        """A loop-core run snapshotted mid-flight and restored into a
        vectorized-core manager (and vice versa) finishes with caps
        bit-identical to never switching at all."""
        n = 7
        rng = np.random.default_rng(seed)
        powers = [rng.uniform(20.0, 165.0, n) for _ in range(25)]

        def factory(core):
            return lambda: _bind(
                DPSManager(DPSConfig(decision_core=core)), n, seed
            )

        reference = _run_manager(factory("loop"), powers)
        for first, second in (
            ("loop", "vectorized"),
            ("vectorized", "loop"),
        ):
            switched = _run_manager(
                factory(first),
                powers,
                snapshot_at=snapshot_at,
                restore_into=factory(second),
            )
            for rc, sc in zip(reference, switched):
                np.testing.assert_array_equal(sc, rc)

"""Priority module (paper Algorithm 2): derivative, frequency, hysteresis."""

import numpy as np
import pytest

from repro.core.config import PriorityConfig
from repro.core.priority import PriorityModule

CFG = PriorityConfig(
    history_len=20,
    deriv_window=4,
    deriv_inc_threshold=2.0,
    deriv_dec_threshold=-2.0,
    peak_prominence=20.0,
    pp_threshold=2,
    std_threshold=12.0,
)


def hist(*columns):
    """Build a (h, n_units) history from per-unit sample lists."""
    return np.stack([np.asarray(c, dtype=float) for c in columns], axis=1)


class TestWarmup:
    def test_no_classification_below_window(self):
        mod = PriorityModule(1, CFG)
        out = mod.update(hist([100.0, 200.0]), dt_s=1.0)
        assert not out[0]  # Huge rise, but only 2 samples < window 4.

    def test_classifies_at_window(self):
        mod = PriorityModule(1, CFG)
        out = mod.update(hist([60.0, 90.0, 120.0, 150.0]), dt_s=1.0)
        assert out[0]


class TestDerivative:
    def test_rising_power_high_priority(self):
        mod = PriorityModule(1, CFG)
        out = mod.update(hist([60, 60, 60, 60, 70, 80, 90]), dt_s=1.0)
        assert out[0]

    def test_falling_power_low_priority(self):
        mod = PriorityModule(1, CFG)
        mod.update(hist([60, 70, 80, 90]), dt_s=1.0)
        out = mod.update(hist([90, 80, 70, 60]), dt_s=1.0)
        assert not out[0]

    def test_flat_power_keeps_previous_priority(self):
        """The hysteresis: a riser stays high priority while flat."""
        mod = PriorityModule(1, CFG)
        mod.update(hist([60, 80, 100, 120]), dt_s=1.0)
        out = mod.update(hist([120, 120.5, 119.8, 120.2]), dt_s=1.0)
        assert out[0]

    def test_flat_power_keeps_low_priority_too(self):
        mod = PriorityModule(1, CFG)
        out = mod.update(hist([120, 120, 120, 120]), dt_s=1.0)
        assert not out[0]

    def test_dt_scales_derivative(self):
        # A 6 W rise over 3 samples: 2 W/s at dt=1 (not > threshold 2.0),
        # but 4 W/s at dt=0.5.
        mod_slow = PriorityModule(1, CFG)
        assert not mod_slow.update(hist([100, 102, 104, 106]), dt_s=1.0)[0]
        mod_fast = PriorityModule(1, CFG)
        assert mod_fast.update(hist([100, 102, 104, 106]), dt_s=0.5)[0]

    def test_capped_rise_is_detected(self):
        """The critical case from DESIGN.md: a demand rise clipped at a low
        cap shows only a few watts of slope — it must still classify."""
        mod = PriorityModule(1, CFG)
        out = mod.update(hist([74, 74, 78, 81, 81]), dt_s=1.0)
        assert out[0]


class TestFrequency:
    def _oscillating(self, n=20):
        t = np.arange(n)
        return np.where(t % 4 < 2, 150.0, 60.0)

    def test_oscillation_sets_high_freq_and_priority(self):
        mod = PriorityModule(1, CFG)
        out = mod.update(hist(self._oscillating()), dt_s=1.0)
        assert out[0]
        assert mod.high_freq[0]

    def test_high_freq_pins_priority_through_falling_power(self):
        mod = PriorityModule(1, CFG)
        mod.update(hist(self._oscillating()), dt_s=1.0)
        # Power now falling but still oscillating enough (std high).
        falling = np.concatenate([self._oscillating(16), [50, 45, 40, 35.0]])
        out = mod.update(hist(falling), dt_s=1.0)
        assert out[0]  # Pinned: no derivative check for high-freq units.

    def test_high_freq_cleared_when_quiet_and_low_std(self):
        mod = PriorityModule(1, CFG)
        mod.update(hist(self._oscillating()), dt_s=1.0)
        quiet = np.full(20, 80.0)
        out = mod.update(hist(quiet), dt_s=1.0)
        assert not mod.high_freq[0]
        assert not out[0]

    def test_high_freq_kept_when_std_still_high(self):
        """Few prominent peaks but large std: the std check keeps the flag
        (Algorithm 2's extra guard)."""
        mod = PriorityModule(1, CFG)
        mod.update(hist(self._oscillating()), dt_s=1.0)
        # A single big swing: peak count low, std well above threshold.
        swing = np.concatenate([np.full(10, 60.0), np.full(10, 150.0)])
        out = mod.update(hist(swing), dt_s=1.0)
        assert mod.high_freq[0]
        assert out[0]

    def test_use_frequency_false_skips_detection(self):
        mod = PriorityModule(1, CFG, use_frequency=False)
        osc = self._oscillating()
        mod.update(hist(osc), dt_s=1.0)
        assert not mod.high_freq[0]


class TestLsqDerivative:
    def _cfg(self, method):
        import dataclasses

        return dataclasses.replace(CFG, deriv_method=method)

    def test_clean_ramp_same_classification(self):
        for method in ("endpoints", "lsq"):
            mod = PriorityModule(1, self._cfg(method))
            assert mod.update(hist([60, 70, 80, 90]), dt_s=1.0)[0], method

    def test_lsq_slope_matches_linear_series(self):
        """On an exact line both estimators agree, so classifications do."""
        series = [100 + 3 * k for k in range(4)]  # Slope 3 W/s > 2.
        for method in ("endpoints", "lsq"):
            mod = PriorityModule(1, self._cfg(method))
            assert mod.update(hist(series), dt_s=1.0)[0], method

    def test_lsq_more_robust_to_endpoint_spike(self):
        """A single corrupted endpoint flips the endpoint estimator but
        not the least-squares one (slopes: 2.17 vs 1.95 W/s, threshold 2)."""
        series = [100.0, 100.0, 100.0, 106.5]  # Last sample spiked.
        endpoint = PriorityModule(1, self._cfg("endpoints"))
        lsq = PriorityModule(1, self._cfg("lsq"))
        assert endpoint.update(hist(series), dt_s=1.0)[0]
        assert not lsq.update(hist(series), dt_s=1.0)[0]

    def test_config_rejects_unknown_method(self):
        import dataclasses

        with pytest.raises(ValueError, match="deriv_method"):
            dataclasses.replace(CFG, deriv_method="spline")


class TestMultiUnit:
    def test_units_classified_independently(self):
        mod = PriorityModule(2, CFG)
        rising = [60, 70, 80, 90.0]
        falling = [90, 80, 70, 60.0]
        out = mod.update(hist(rising, falling), dt_s=1.0)
        assert out[0] and not out[1]

    def test_reset_clears_state(self):
        mod = PriorityModule(1, CFG)
        mod.update(hist([60, 80, 100, 120]), dt_s=1.0)
        mod.reset()
        assert not mod.priority[0] and not mod.high_freq[0]


class TestValidation:
    def test_rejects_wrong_units(self):
        mod = PriorityModule(2, CFG)
        with pytest.raises(ValueError, match="incompatible"):
            mod.update(np.zeros((5, 3)), dt_s=1.0)

    def test_rejects_nonpositive_dt(self):
        mod = PriorityModule(1, CFG)
        with pytest.raises(ValueError, match="dt_s"):
            mod.update(np.zeros((5, 1)), dt_s=0.0)

    def test_rejects_zero_units(self):
        with pytest.raises(ValueError, match="n_units"):
            PriorityModule(0, CFG)

    def test_update_returns_copy(self):
        mod = PriorityModule(1, CFG)
        out = mod.update(hist([60, 80, 100, 120]), dt_s=1.0)
        out[0] = False
        assert mod.priority[0]

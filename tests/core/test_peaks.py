"""Prominent-peak detection: unit cases, reference cross-check, properties."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.peaks import (
    count_prominent_peaks,
    count_prominent_peaks_multi,
    peak_prominences,
)


def _reference_count(x: np.ndarray, min_prominence: float) -> int:
    """Count via the full prominence computation (the readable reference)."""
    _, prom = peak_prominences(x)
    return int(np.count_nonzero(prom >= min_prominence))


class TestPeakProminences:
    def test_single_triangle(self):
        x = np.array([0.0, 10.0, 0.0])
        idx, prom = peak_prominences(x)
        assert idx.tolist() == [1]
        assert prom[0] == pytest.approx(10.0)

    def test_two_peaks_with_valley(self):
        x = np.array([0.0, 50.0, 20.0, 40.0, 0.0])
        idx, prom = peak_prominences(x)
        assert idx.tolist() == [1, 3]
        # Peak 1 dominates: prominence to the global floor.
        assert prom[0] == pytest.approx(50.0)
        # Peak 3 is bounded by the valley at 20 toward the higher peak.
        assert prom[1] == pytest.approx(20.0)

    def test_monotone_series_has_no_peaks(self):
        idx, prom = peak_prominences(np.arange(10.0))
        assert idx.size == 0 and prom.size == 0

    def test_flat_series_has_no_peaks(self):
        idx, _ = peak_prominences(np.full(10, 5.0))
        assert idx.size == 0

    def test_plateau_counts_once(self):
        x = np.array([0.0, 5.0, 5.0, 5.0, 0.0])
        idx, prom = peak_prominences(x)
        assert idx.tolist() == [1]
        assert prom[0] == pytest.approx(5.0)

    def test_plateau_then_rise_not_a_peak(self):
        # The plateau at 5 is followed by a climb to 8; its right valley
        # floor equals its height, so prominence is 0 and it is dropped.
        x = np.array([0.0, 5.0, 5.0, 8.0, 0.0])
        idx, prom = peak_prominences(x)
        assert idx.tolist() == [3]

    def test_endpoints_never_peaks(self):
        x = np.array([10.0, 0.0, 10.0])
        idx, _ = peak_prominences(x)
        assert idx.size == 0

    def test_rejects_2d_input(self):
        with pytest.raises(ValueError, match="1-D"):
            peak_prominences(np.zeros((3, 3)))


class TestCountProminentPeaks:
    def test_threshold_filters(self):
        x = np.array([0.0, 30.0, 10.0, 15.0, 0.0])
        assert count_prominent_peaks(x, 20.0) == 1  # Only the 30 peak.
        assert count_prominent_peaks(x, 4.0) == 2

    def test_square_wave_counts_every_burst(self):
        x = np.array([0.0, 100.0, 0.0, 100.0, 0.0, 100.0, 0.0])
        assert count_prominent_peaks(x, 50.0) == 3

    def test_rejects_nonpositive_prominence(self):
        with pytest.raises(ValueError, match="min_prominence"):
            count_prominent_peaks(np.zeros(5), 0.0)

    def test_short_series(self):
        assert count_prominent_peaks(np.array([1.0, 2.0]), 1.0) == 0
        assert count_prominent_peaks(np.array([5.0]), 1.0) == 0

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=60, deadline=None)
    def test_fast_walk_matches_reference(self, seed):
        """The hot-path walk and the full prominence computation agree."""
        rng = np.random.default_rng(seed)
        x = rng.uniform(0.0, 160.0, size=rng.integers(3, 40))
        threshold = float(rng.uniform(1.0, 80.0))
        assert count_prominent_peaks(x, threshold) == _reference_count(
            x, threshold
        )

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=40, deadline=None)
    def test_count_monotone_in_threshold(self, seed):
        rng = np.random.default_rng(seed)
        x = rng.uniform(0.0, 160.0, size=25)
        counts = [count_prominent_peaks(x, th) for th in (5.0, 20.0, 60.0)]
        assert counts[0] >= counts[1] >= counts[2]


class TestCountMulti:
    def test_matches_per_column(self, rng):
        history = rng.uniform(40, 160, size=(20, 6))
        multi = count_prominent_peaks_multi(history, 25.0)
        for u in range(6):
            assert multi[u] == count_prominent_peaks(history[:, u], 25.0)

    def test_rejects_1d(self):
        with pytest.raises(ValueError, match="2-D"):
            count_prominent_peaks_multi(np.zeros(5), 1.0)

    def test_rejects_nonpositive_prominence(self):
        with pytest.raises(ValueError, match="min_prominence"):
            count_prominent_peaks_multi(np.zeros((5, 2)), -1.0)

    def test_oscillating_column_flagged_high(self):
        t = np.arange(20)
        osc = np.where(t % 4 < 2, 150.0, 60.0)
        flat = np.full(20, 100.0)
        history = np.stack([osc, flat], axis=1)
        counts = count_prominent_peaks_multi(history, 30.0)
        assert counts[0] >= 3
        assert counts[1] == 0

"""PowerManager base contract, registry, and the constant baseline."""

import numpy as np
import pytest

from repro.core.constant import ConstantManager
from repro.core.managers import (
    PowerManager,
    available_managers,
    create_manager,
    register_manager,
)


def bound(manager, n=4, budget=440.0, max_cap=165.0, min_cap=30.0):
    manager.bind(n, budget, max_cap, min_cap, dt_s=1.0,
                 rng=np.random.default_rng(0))
    return manager


class TestRegistry:
    def test_all_managers_registered(self):
        assert available_managers() == (
            "constant", "dps", "dps+", "hierarchical", "oracle", "p2p",
            "resilient", "slurm",
        )

    def test_create_by_name(self):
        assert isinstance(create_manager("constant"), ConstantManager)

    def test_unknown_name_lists_available(self):
        with pytest.raises(KeyError, match="constant"):
            create_manager("nope")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):

            @register_manager
            class Dup(ConstantManager):  # noqa: N801
                name = "constant"

    def test_unnamed_registration_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):

            @register_manager
            class NoName(ConstantManager):  # noqa: N801
                name = ""


class TestBinding:
    def test_step_before_bind_raises(self):
        with pytest.raises(RuntimeError, match="bound"):
            ConstantManager().step(np.zeros(4))

    def test_initial_caps_are_constant_cap(self):
        mgr = bound(ConstantManager())
        np.testing.assert_allclose(mgr.caps, 110.0)

    def test_initial_cap_clipped_at_tdp(self):
        mgr = ConstantManager()
        mgr.bind(2, budget_w=400.0, max_cap_w=165.0)
        assert mgr.initial_cap_w == pytest.approx(165.0)

    @pytest.mark.parametrize(
        "kwargs, match",
        [
            (dict(n_units=0, budget_w=100, max_cap_w=165), "n_units"),
            (dict(n_units=2, budget_w=0, max_cap_w=165), "budget_w"),
            (dict(n_units=2, budget_w=100, max_cap_w=0), "max_cap_w"),
            (
                dict(n_units=2, budget_w=100, max_cap_w=165, min_cap_w=200),
                "min_cap_w",
            ),
            (
                dict(n_units=4, budget_w=100, max_cap_w=165, min_cap_w=30),
                "minimum cap",
            ),
            (dict(n_units=2, budget_w=100, max_cap_w=165, dt_s=0), "dt_s"),
        ],
    )
    def test_bind_validation(self, kwargs, match):
        with pytest.raises(ValueError, match=match):
            ConstantManager().bind(**kwargs)

    def test_rebind_resets_caps(self):
        mgr = bound(ConstantManager())
        mgr.step(np.full(4, 50.0))
        bound(mgr, n=2, budget=220.0)
        assert mgr.caps.shape == (2,)


class TestStepContract:
    def test_rejects_wrong_shape(self):
        mgr = bound(ConstantManager())
        with pytest.raises(ValueError, match="shape"):
            mgr.step(np.zeros(3))

    def test_rejects_nan_power(self):
        mgr = bound(ConstantManager())
        with pytest.raises(ValueError, match="non-finite"):
            mgr.step(np.array([1.0, 2.0, np.nan, 4.0]))

    def test_caps_view_readonly(self):
        mgr = bound(ConstantManager())
        with pytest.raises(ValueError):
            mgr.caps[0] = 0.0

    def test_over_allocation_scaled_back(self):
        """A buggy subclass over-allocating is clipped to the budget."""

        class Greedy(PowerManager):
            name = "greedy-test"

            def _decide(self, power_w, demand_w):
                return np.full(self.n_units, self.max_cap_w)

        mgr = bound(Greedy())
        caps = mgr.step(np.full(4, 100.0))
        assert caps.sum() == pytest.approx(440.0)
        assert np.all(caps >= 30.0)


class TestBudgetRescaleObservability:
    """The over-allocation rescale used to be silent; now every firing
    bumps ``budget_rescales`` and calls the ``on_budget_rescaled`` hook
    with the manager name and computed overshoot."""

    class Greedy(PowerManager):
        name = "greedy-rescale-test"

        def _decide(self, power_w, demand_w):
            return np.full(self.n_units, self.max_cap_w)

    def test_rescale_fires_counter_and_callback(self):
        mgr = bound(self.Greedy())
        calls = []
        mgr.on_budget_rescaled = lambda name, over: calls.append((name, over))
        mgr.step(np.full(4, 100.0))
        mgr.step(np.full(4, 100.0))
        assert mgr.budget_rescales == 2
        assert len(calls) == 2
        name, over = calls[0]
        assert name == "greedy-rescale-test"
        # Greedy asks for 4 x 165 = 660 W against a 440 W budget.
        assert over == pytest.approx(220.0)

    def test_counter_resets_on_bind(self):
        mgr = bound(self.Greedy())
        mgr.step(np.full(4, 100.0))
        assert mgr.budget_rescales == 1
        bound(mgr)
        assert mgr.budget_rescales == 0

    @pytest.mark.parametrize("name", ["constant", "dps", "dps+", "slurm"])
    def test_correct_managers_never_fire(self, name):
        mgr = bound(create_manager(name))
        fired = []
        mgr.on_budget_rescaled = lambda n, o: fired.append((n, o))
        rng = np.random.default_rng(7)
        for _ in range(20):
            mgr.step(np.full(4, 100.0) + rng.normal(0.0, 5.0, 4))
        assert mgr.budget_rescales == 0
        assert fired == []

    def test_caps_clipped_to_range(self):
        class Wild(PowerManager):
            name = "wild-test"

            def _decide(self, power_w, demand_w):
                return np.array([-50.0, 500.0, 100.0, 100.0])

        mgr = bound(Wild())
        caps = mgr.step(np.full(4, 100.0))
        assert caps[0] >= 30.0
        assert caps[1] <= 165.0


class TestConstantManager:
    def test_caps_never_change(self):
        mgr = bound(ConstantManager())
        first = mgr.step(np.full(4, 150.0))
        second = mgr.step(np.full(4, 10.0))
        np.testing.assert_allclose(first, second)
        np.testing.assert_allclose(first, 110.0)

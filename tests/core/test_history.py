"""HistoryBuffer ring semantics."""

import numpy as np
import pytest

from repro.core.history import HistoryBuffer


class TestConstruction:
    def test_rejects_zero_length(self):
        with pytest.raises(ValueError, match="history_len"):
            HistoryBuffer(0, 2)

    def test_rejects_zero_units(self):
        with pytest.raises(ValueError, match="n_units"):
            HistoryBuffer(5, 0)


class TestPushAndOrder:
    def test_empty_initially(self):
        buf = HistoryBuffer(4, 2)
        assert len(buf) == 0 and not buf.full

    def test_chronological_before_full(self):
        buf = HistoryBuffer(4, 1)
        for v in (1.0, 2.0, 3.0):
            buf.push(np.array([v]))
        np.testing.assert_allclose(buf.chronological()[:, 0], [1, 2, 3])
        assert not buf.full

    def test_chronological_after_wrap(self):
        buf = HistoryBuffer(3, 1)
        for v in range(6):
            buf.push(np.array([float(v)]))
        np.testing.assert_allclose(buf.chronological()[:, 0], [3, 4, 5])
        assert buf.full and len(buf) == 3

    def test_exact_fill_no_wrap(self):
        buf = HistoryBuffer(3, 1)
        for v in (1.0, 2.0, 3.0):
            buf.push(np.array([v]))
        np.testing.assert_allclose(buf.chronological()[:, 0], [1, 2, 3])

    def test_latest(self):
        buf = HistoryBuffer(3, 2)
        buf.push(np.array([1.0, 10.0]))
        buf.push(np.array([2.0, 20.0]))
        np.testing.assert_allclose(buf.latest(), [2.0, 20.0])

    def test_latest_empty_raises(self):
        with pytest.raises(IndexError, match="empty"):
            HistoryBuffer(3, 1).latest()

    def test_push_wrong_shape(self):
        buf = HistoryBuffer(3, 2)
        with pytest.raises(ValueError, match="shape"):
            buf.push(np.zeros(3))

    def test_reset(self):
        buf = HistoryBuffer(3, 1)
        buf.push(np.array([5.0]))
        buf.reset()
        assert len(buf) == 0
        buf.push(np.array([7.0]))
        np.testing.assert_allclose(buf.chronological()[:, 0], [7.0])

    def test_partial_view_readonly(self):
        buf = HistoryBuffer(4, 1)
        buf.push(np.array([1.0]))
        view = buf.chronological()
        with pytest.raises(ValueError):
            view[0, 0] = 9.0

    def test_push_copies_sample(self):
        buf = HistoryBuffer(3, 1)
        sample = np.array([1.0])
        buf.push(sample)
        sample[0] = 99.0
        assert buf.latest()[0] == 1.0

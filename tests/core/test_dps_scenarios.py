"""Golden-scenario regressions for the tuned DPS dynamics.

These lock in the behaviours that took calibration to achieve (see
EXPERIMENTS.md and DESIGN.md §7): the capped-riser detection that makes
the constant-allocation lower bound real, the restore/readjust interplay
over a full phase cycle, and the budget hand-back when a hungry unit goes
idle.  They run the manager closed-loop on scripted demand schedules — no
simulator, no workloads — so a regression points directly at the module
that broke.
"""

import numpy as np
import pytest

from repro.core.config import DPSConfig
from repro.core.dps import DPSManager

BUDGET = 440.0  # 4 units, constant cap 110 W.


def bound(seed=0):
    mgr = DPSManager(DPSConfig())
    mgr.bind(4, BUDGET, max_cap_w=165.0, min_cap_w=30.0,
             rng=np.random.default_rng(seed))
    return mgr


def drive(mgr, demand, steps):
    """Closed loop: power follows demand clipped at the active caps."""
    caps = np.asarray(mgr.caps)
    for _ in range(steps):
        power = np.minimum(np.asarray(demand, dtype=float), caps)
        caps = mgr.step(power)
    return caps


class TestCappedRiserScenario:
    """The failure mode that motivated the sensitive derivative default:
    a unit whose demand returns while its cap is low shows only a few
    watts of visible rise, yet must regain a fair share."""

    def test_full_cycle(self):
        mgr = bound()
        hungry = [160.0, 160.0, 160.0, 160.0]
        half_idle = [160.0, 160.0, 40.0, 40.0]

        # Phase 1: everyone hungry — caps settle near the constant cap.
        caps = drive(mgr, hungry, 25)
        np.testing.assert_allclose(caps, 110.0, atol=8.0)

        # Phase 2: units 2-3 idle — their budget flows to units 0-1.
        caps = drive(mgr, half_idle, 25)
        assert caps[:2].min() > 135.0
        assert caps[2:].max() < 70.0

        # Phase 3: units 2-3's demand returns while they sit at ~45 W
        # caps.  Their clipped rise must reclassify them high priority and
        # re-equalize toward the constant cap within a modest window.
        caps = drive(mgr, hungry, 15)
        assert caps[2:].min() > 95.0, (
            "capped risers stayed starved — derivative detection of "
            "cap-clipped rises has regressed"
        )
        assert abs(caps[:2].mean() - caps[2:].mean()) < 15.0


class TestRestoreCycle:
    def test_quiet_then_burst_has_headroom(self):
        mgr = bound()
        drive(mgr, [160.0, 40.0, 40.0, 40.0], 20)  # Skew the caps.
        drive(mgr, [40.0, 40.0, 40.0, 40.0], 10)   # All quiet: restore.
        np.testing.assert_allclose(np.asarray(mgr.caps), 110.0, atol=0.5)
        # A burst on the previously-starved unit starts with full headroom.
        caps = drive(mgr, [40.0, 160.0, 40.0, 40.0], 1)
        assert float(np.asarray(mgr.caps)[1]) >= 100.0
        del caps


class TestBudgetHandBack:
    def test_idle_unit_releases_within_steps(self):
        mgr = bound()
        drive(mgr, [160.0, 160.0, 160.0, 160.0], 20)
        caps = drive(mgr, [40.0, 160.0, 160.0, 160.0], 12)
        # Unit 0's unused budget moved to the others.
        assert caps[0] < 70.0
        assert caps[1:].mean() > 118.0

    def test_total_never_exceeds_budget_through_transitions(self):
        mgr = bound()
        schedule = [
            [160.0] * 4,
            [40.0, 160.0, 160.0, 160.0],
            [40.0] * 4,
            [160.0, 40.0, 160.0, 40.0],
            [160.0] * 4,
        ]
        for demand in schedule:
            caps = drive(mgr, demand, 8)
            assert caps.sum() <= BUDGET * (1 + 1e-9)


class TestOscillatorPinned:
    def test_bursty_unit_keeps_generous_cap(self):
        """A 4-step-period oscillator under contention must not have its
        cap chased into the trough (the LR protection, Algorithm 2)."""
        mgr = bound()
        caps = np.asarray(mgr.caps)
        trough_caps = []
        for t in range(60):
            level = 150.0 if t % 4 < 1 else 55.0
            demand = np.array([level, 150.0, 150.0, 150.0])
            power = np.minimum(demand, caps)
            caps = mgr.step(power)
            if t > 30 and t % 4 == 3:  # Deep in the trough.
                trough_caps.append(float(caps[0]))
        # SLURM would sit near 55 W here; DPS keeps real headroom.
        assert np.mean(trough_caps) > 80.0

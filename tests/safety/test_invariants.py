"""Invariant monitors: the built-in checks, the registry, the cadences."""

import numpy as np
import pytest

from repro.core.managers import create_manager
from repro.safety import (
    Invariant,
    InvariantContext,
    InvariantMonitor,
    InvariantViolationError,
    available_invariants,
    default_invariants,
    register_invariant,
)
from repro.safety.invariants import _REGISTRY


def ctx(caps=None, manager=None, **kwargs):
    defaults = dict(budget_w=440.0, min_cap_w=30.0, max_cap_w=165.0)
    defaults.update(kwargs)
    return InvariantContext(caps_w=caps, manager=manager, **defaults)


def check(name, context):
    return _REGISTRY[name].check(context)


class TestRegistry:
    def test_builtins_registered(self):
        assert available_invariants() == (
            "budget-conservation",
            "cap-bounds",
            "finite-kalman",
            "readjust-conservation",
            "shard-lease-conservation",
            "snapshot-idempotence",
        )

    def test_duplicate_name_rejected(self):
        class Dup(Invariant):
            name = "cap-bounds"

            def check(self, ctx):
                return None

        with pytest.raises(ValueError, match="duplicate"):
            register_invariant(Dup())

    def test_empty_name_rejected(self):
        class Anon(Invariant):
            def check(self, ctx):
                return None

        with pytest.raises(ValueError, match="non-empty name"):
            register_invariant(Anon())


class TestBudgetConservation:
    def test_within_budget_ok(self):
        assert check("budget-conservation", ctx(np.full(4, 110.0))) is None

    def test_overshoot_detected(self):
        detail = check("budget-conservation", ctx(np.full(4, 120.0)))
        assert detail is not None and "exceeds budget" in detail

    def test_quantized_allowance(self):
        # Half-up wire rounding can add up to 0.05 W per unit.
        caps = np.full(4, 110.04)
        assert (
            check("budget-conservation", ctx(caps, quantized=True)) is None
        )


class TestCapBounds:
    def test_in_range_ok(self):
        assert check("cap-bounds", ctx(np.full(4, 110.0))) is None

    def test_non_finite_detected(self):
        detail = check("cap-bounds", ctx(np.array([110.0, np.nan, 1.0, 1.0])))
        assert detail is not None and "non-finite" in detail

    def test_below_floor_detected(self):
        detail = check("cap-bounds", ctx(np.array([29.0, 110.0, 110.0, 110.0])))
        assert detail is not None and "below floor" in detail

    def test_above_ceiling_detected(self):
        detail = check("cap-bounds", ctx(np.array([166.0, 110.0, 110.0, 110.0])))
        assert detail is not None and "above ceiling" in detail


class TestManagerChecks:
    def stepped_dps(self, readings=150.0, steps=3):
        mgr = create_manager("dps")
        mgr.bind(4, 440.0, 165.0, 30.0, rng=np.random.default_rng(0))
        for _ in range(steps):
            caps = mgr.step(np.full(4, readings))
        return mgr, caps

    def test_readjust_conservation_holds_for_dps(self):
        mgr, caps = self.stepped_dps()
        assert check("readjust-conservation", ctx(caps, mgr)) is None

    def test_readjust_conservation_skips_managerless(self):
        assert check("readjust-conservation", ctx(np.full(4, 100.0))) is None

    def test_finite_kalman_holds_for_dps(self):
        mgr, caps = self.stepped_dps()
        assert check("finite-kalman", ctx(caps, mgr)) is None

    def test_finite_kalman_detects_poisoned_state(self):
        mgr, caps = self.stepped_dps()
        mgr._kalman._x[1] = np.nan
        detail = check("finite-kalman", ctx(caps, mgr))
        assert detail is not None and "Kalman estimate" in detail

    def test_snapshot_idempotence_holds_for_dps(self):
        mgr, caps = self.stepped_dps()
        assert check("snapshot-idempotence", ctx(caps, mgr)) is None


class TestMonitor:
    def failing(self):
        class AlwaysFails(Invariant):
            name = "always-fails"

            def check(self, ctx):
                return "broken"

        return AlwaysFails()

    def test_strict_raises(self):
        monitor = InvariantMonitor(mode="strict", invariants=(self.failing(),))
        with pytest.raises(InvariantViolationError, match="always-fails"):
            monitor.run(ctx(np.full(4, 110.0)), now=0.0)
        assert len(monitor.events.of_kind("invariant_violation")) == 1

    def test_sampling_emits_without_raising(self):
        monitor = InvariantMonitor(
            mode="sampling", sample_every=3, invariants=(self.failing(),)
        )
        for cycle in range(7):
            monitor.run(ctx(np.full(4, 110.0)), now=float(cycle))
        # Cycles 1, 4, and 7 are swept (1-based, every 3rd).
        assert monitor.sweeps_run == 3
        assert len(monitor.violations) == 3

    def test_off_does_nothing(self):
        monitor = InvariantMonitor(mode="off", invariants=(self.failing(),))
        assert monitor.run(ctx(np.full(4, 110.0)), now=0.0) == []
        assert monitor.sweeps_run == 0

    def test_default_invariants_pass_on_healthy_state(self):
        mgr = create_manager("dps")
        mgr.bind(4, 440.0, 165.0, 30.0, rng=np.random.default_rng(0))
        caps = mgr.step(np.full(4, 120.0))
        monitor = InvariantMonitor(mode="strict")
        assert monitor.invariants == default_invariants()
        assert monitor.run(ctx(caps, mgr), now=0.0) == []

    def test_validation(self):
        with pytest.raises(ValueError, match="mode"):
            InvariantMonitor(mode="bogus")
        with pytest.raises(ValueError, match="sample_every"):
            InvariantMonitor(sample_every=0)

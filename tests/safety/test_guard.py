"""BudgetGuard: the graded degradation ladder and its accounting."""

import numpy as np
import pytest

from repro.core.managers import create_manager
from repro.resilience.manager import ResilientManager
from repro.safety import BudgetEnvelope, BudgetGuard, last_readjust_grants
from repro.telemetry.log import ResilienceEventLog


def make_guard(n=4, budget=400.0, max_cap=165.0, min_cap=30.0, **kwargs):
    env = BudgetEnvelope(n_units=n, budget_w=budget, max_cap_w=max_cap)
    # Settle the applied view so ladder tests exercise steady-state
    # enforcement, not the cold-start prior.
    env.record_applied(slice(None), np.full(n, budget / n))
    events = ResilienceEventLog()
    return BudgetGuard(env, min_cap_w=min_cap, events=events, **kwargs), env


class TestNoAction:
    def test_within_budget_passes_through(self):
        guard, _ = make_guard()
        caps = np.array([100.0, 100.0, 100.0, 100.0])
        decision = guard.enforce(caps, now=0.0)
        assert decision.rung is None
        np.testing.assert_array_equal(decision.caps_w, caps)
        assert guard.excursions == 0
        assert len(guard.events) == 0

    def test_float_noise_is_not_an_excursion(self):
        guard, _ = make_guard()
        caps = np.full(4, 100.0 + 1e-10)
        decision = guard.enforce(caps, now=0.0)
        assert decision.rung is None
        assert guard.excursions == 0


class TestLadder:
    def test_rung1_shaves_grants(self):
        guard, _ = make_guard()
        caps = np.array([120.0, 120.0, 100.0, 100.0])  # 40 W over.
        grants = np.array([30.0, 30.0, 0.0, 0.0])  # 60 W of fresh grants.
        decision = guard.enforce(caps, now=1.0, grants_w=grants)
        assert decision.rung == "budget_shave_grants"
        assert decision.caps_w.sum() == pytest.approx(400.0)
        # Proportional: each granted unit gives back 40/60 of its grant.
        np.testing.assert_allclose(
            decision.caps_w, [100.0, 100.0, 100.0, 100.0]
        )
        (event,) = guard.events.of_kind("budget_shave_grants")
        assert "overshoot=40.000W" in event.detail

    def test_insufficient_grants_skip_to_rung2(self):
        """A partial shave would still need rung 2 — go straight there."""
        guard, env = make_guard()
        caps = np.array([120.0, 120.0, 100.0, 100.0])
        env.record_applied(slice(None), caps)  # Rung output, not pacing.
        grants = np.array([10.0, 10.0, 0.0, 0.0])  # Only 20 W of 40 W.
        decision = guard.enforce(caps, now=1.0, grants_w=grants)
        assert decision.rung == "budget_scale_down"
        assert decision.caps_w.sum() == pytest.approx(400.0)

    def test_rung2_respects_floors(self):
        guard, env = make_guard()
        caps = np.array([150.0, 150.0, 31.0, 109.0])  # 40 W over.
        env.record_applied(slice(None), caps)  # Rung output, not pacing.
        decision = guard.enforce(caps, now=2.0)
        assert decision.rung == "budget_scale_down"
        assert decision.caps_w.sum() == pytest.approx(400.0)
        assert np.all(decision.caps_w >= 30.0 - 1e-9)
        # The near-floor unit gives up almost nothing.
        assert decision.caps_w[2] > 30.8

    def test_rung3_emergency_drop(self):
        """When even the floors cannot absorb the overshoot, every
        reachable unit falls to the emergency constant cap."""
        guard, env = make_guard(budget=200.0)
        env.record_applied(slice(None), np.full(4, 50.0))
        env.record_dispatched(slice(None), np.full(4, 160.0))
        unreachable = np.array([True, True, False, False])
        # Held power: 2 x 160 = 320 W > 200 W budget on its own.
        decision = guard.enforce(
            np.full(4, 50.0), now=3.0, unreachable=unreachable
        )
        assert decision.rung == "budget_emergency_drop"
        # Reachable units drop to the floor; the residual excursion is
        # outside the controller's reach and stays reported.
        np.testing.assert_allclose(decision.caps_w[2:], 30.0)
        assert guard.events.of_kind("budget_emergency_drop")

    def test_unreachable_held_power_shrinks_reachable_share(self):
        guard, env = make_guard()
        env.record_applied(slice(None), np.full(4, 100.0))
        env.record_dispatched(slice(None), np.full(4, 130.0))
        unreachable = np.array([True, False, False, False])
        # Unit 0 holds 130 W, so the other three must fit in 270 W.
        decision = guard.enforce(
            np.full(4, 100.0), now=4.0, unreachable=unreachable
        )
        assert decision.rung == "budget_scale_down"
        assert decision.caps_w[1:].sum() == pytest.approx(270.0)
        # The unreachable unit's cap is untouchable and unmodified.
        assert decision.caps_w[0] == 100.0

    def test_rung_counters(self):
        guard, _ = make_guard()
        guard.enforce(np.full(4, 110.0), now=0.0)
        guard.enforce(np.full(4, 120.0), now=1.0)
        assert guard.rungs_taken == {"budget_scale_down": 2}


class TestRaisePacing:
    def test_redistribution_raise_is_deferred(self):
        """Moving watts between units double-counts during the transient
        (old cap still held, new cap dispatched); the raise side waits a
        cycle so the union never exceeds the budget."""
        guard, _ = make_guard()  # Applied settled at 100 W each.
        decision = guard.enforce(
            np.array([60.0, 140.0, 100.0, 100.0]), now=0.0
        )
        assert decision.rung is None  # Steady state fits exactly.
        # The decrease lands now; the raise is held at the applied value.
        np.testing.assert_allclose(
            decision.caps_w, [60.0, 100.0, 100.0, 100.0]
        )
        assert decision.committed.worst_case_total_w == pytest.approx(400.0)
        assert guard.raises_deferred == 1
        assert guard.excursions == 0
        (event,) = guard.events.of_kind("budget_raise_deferred")
        assert "deferred=40.000W" in event.detail

    def test_partial_deferral_is_proportional(self):
        guard, env = make_guard()
        env.record_applied(slice(None), np.full(4, 90.0))  # 40 W headroom.
        decision = guard.enforce(
            np.array([120.0, 120.0, 60.0, 60.0]), now=0.0
        )
        # 60 W of raises, 20 W of transient excess: defer a third of each.
        np.testing.assert_allclose(
            decision.caps_w, [110.0, 110.0, 60.0, 60.0]
        )
        assert decision.committed.worst_case_total_w == pytest.approx(400.0)
        assert guard.excursions == 0

    def test_deferred_raise_lands_next_cycle(self):
        guard, env = make_guard()
        want = np.array([60.0, 140.0, 100.0, 100.0])
        first = guard.enforce(want, now=0.0)
        # The paced dispatch is acknowledged...
        env.record_dispatched(slice(None), first.caps_w)
        env.confirm_applied(slice(None))
        # ...so the same request now fits: the old 100 W cap of unit 0 is
        # gone and unit 1's raise no longer double-counts.
        second = guard.enforce(want, now=1.0)
        np.testing.assert_allclose(second.caps_w, want)
        assert guard.raises_deferred == 1
        assert guard.excursions == 0

    def test_dry_run_never_defers(self):
        guard, _ = make_guard(dry_run=True)
        caps = np.array([60.0, 140.0, 100.0, 100.0])
        decision = guard.enforce(caps, now=0.0)
        np.testing.assert_array_equal(decision.caps_w, caps)
        assert guard.raises_deferred == 0
        assert not guard.events.of_kind("budget_raise_deferred")


class TestOvershootReporting:
    def test_worst_case_excursion_is_reported(self):
        """Old applied caps above the budget trip the overshoot event even
        when the new candidate already fits."""
        guard, env = make_guard()
        env.record_applied(slice(None), np.full(4, 150.0))  # 600 W held.
        decision = guard.enforce(np.full(4, 90.0), now=5.0)
        assert decision.rung is None  # Steady state fits.
        assert guard.excursions == 1
        (event,) = guard.events.of_kind("budget_overshoot")
        assert "overshoot=200.000W" in event.detail

    def test_dry_run_reports_but_never_modifies(self):
        guard, _ = make_guard(dry_run=True)
        caps = np.full(4, 120.0)
        decision = guard.enforce(caps, now=0.0)
        assert decision.rung is None
        assert decision.overshoot_w == pytest.approx(80.0)
        np.testing.assert_array_equal(decision.caps_w, caps)
        assert guard.excursions == 1
        assert not guard.events.of_kind("budget_scale_down")

    def test_validation(self):
        env = BudgetEnvelope(2, 100.0, 60.0)
        with pytest.raises(ValueError, match="min_cap_w"):
            BudgetGuard(env, min_cap_w=-1.0)
        with pytest.raises(ValueError, match="tol_w"):
            BudgetGuard(env, tol_w=0.0)


class TestGrantIntrospection:
    def bound(self, name="dps"):
        mgr = create_manager(name)
        mgr.bind(4, 440.0, 165.0, 30.0, rng=np.random.default_rng(0))
        return mgr

    def test_dps_exposes_grants(self):
        mgr = self.bound()
        assert last_readjust_grants(mgr) is None  # No step yet.
        mgr.step(np.full(4, 150.0))
        grants = last_readjust_grants(mgr)
        assert grants is not None
        assert grants.shape == (4,)
        assert np.all(grants >= 0.0)

    def test_constant_manager_has_no_grants(self):
        mgr = self.bound("constant")
        mgr.step(np.full(4, 100.0))
        assert last_readjust_grants(mgr) is None

    def warmed_resilient(self):
        """A resilient DPS wrapper stepped past validator warm-up."""
        mgr = ResilientManager(create_manager("dps"))
        mgr.bind(4, 440.0, 165.0, 30.0, rng=np.random.default_rng(0))
        rng = np.random.default_rng(1)
        for _ in range(10):
            mgr.step(np.full(4, 100.0) + rng.normal(0, 1.0, 4))
        return mgr

    def test_walks_resilient_wrapper(self):
        mgr = self.warmed_resilient()
        assert not mgr.safe_mode
        assert last_readjust_grants(mgr) is not None

    def test_safe_mode_reports_no_grants(self):
        """A safe-mode wrapper's constant caps carry no grants to shave,
        even though the shadow-run inner manager has some."""
        mgr = self.warmed_resilient()
        mgr._safe_mode = True
        assert mgr.inner.last_grants_w is not None
        assert last_readjust_grants(mgr) is None

"""Simulation + SafetyConfig: the envelope on the direct actuation path."""

import numpy as np
import pytest

from repro.cluster.cluster import Cluster
from repro.cluster.simulator import Assignment, Simulation
from repro.core.config import ClusterSpec, SimulationConfig
from repro.core.managers import create_manager
from repro.safety import SafetyConfig
from repro.workloads.phases import Hold, PhaseProgram, Ramp
from repro.workloads.spec import WorkloadSpec

SPEC = ClusterSpec(n_nodes=2, sockets_per_node=2)


def tiny_workload(name="tiny", duration=20.0, level=140.0):
    return WorkloadSpec(
        name=name,
        suite="spark",
        power_class="mid",
        program=PhaseProgram(
            [Ramp(2, 20, level), Hold(duration, level), Ramp(2, level, 20)]
        ),
        active_units=None,
        paper_duration_s=duration,
        paper_above_110_pct=50.0,
        data_size="test",
    )


def make_sim(manager="dps", safety=None, **kwargs):
    cluster = Cluster(SPEC)
    workloads = [
        (tiny_workload("a"), cluster.half_unit_ids(0)),
        (tiny_workload("b"), cluster.half_unit_ids(1)),
    ]
    return Simulation(
        cluster_spec=SPEC,
        manager=create_manager(manager),
        assignments=[Assignment(spec=w, unit_ids=u) for w, u in workloads],
        target_runs=1,
        sim_config=SimulationConfig(max_steps=5000, inter_run_gap_s=2.0),
        seed=1,
        safety=safety,
        **kwargs,
    )


class TestSimulatorEnvelope:
    def test_strict_run_is_clean(self):
        """A healthy DPS run under strict monitors: no violations, no
        excursions (the simulator seeds the applied view from a real
        hardware read-back, so there is no cold-start transient), and
        the ladder never fires."""
        result = make_sim(
            safety=SafetyConfig(guard=True, invariant_mode="strict")
        ).run()
        assert result.safety_events is not None
        assert not result.safety_events.of_kind("invariant_violation")
        assert result.budget_excursions == 0
        assert result.guard_rungs == {}

    def test_safety_events_merge_into_telemetry(self):
        result = make_sim(
            safety=SafetyConfig(guard=True, invariant_mode="sampling"),
            record_telemetry=True,
        ).run()
        # Whatever the envelope recorded is also in the telemetry
        # channel, so the JSON/CSV exports carry it.
        safety_kinds = {e.kind for e in result.safety_events}
        telemetry_kinds = {e.kind for e in result.telemetry.events}
        assert safety_kinds <= telemetry_kinds or not safety_kinds

    def test_decisions_unchanged_by_clean_guard(self):
        """On a run the ladder never touches, enabling the envelope must
        not perturb a single decision."""
        plain = make_sim(record_telemetry=True).run()
        guarded = make_sim(
            safety=SafetyConfig(guard=True, invariant_mode="strict"),
            record_telemetry=True,
        ).run()
        np.testing.assert_allclose(
            plain.telemetry.caps_w, guarded.telemetry.caps_w
        )

    def test_comm_path_rejected(self):
        with pytest.raises(ValueError, match="comm path"):
            make_sim(
                safety=SafetyConfig(guard=True), use_comm=True
            )

    def test_disabled_safety_leaves_result_fields_empty(self):
        result = make_sim().run()
        assert result.safety_events is None
        assert result.budget_excursions == 0
        assert result.guard_rungs == {}

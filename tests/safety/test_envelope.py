"""BudgetEnvelope: the three cap views and committed-power accounting."""

import numpy as np
import pytest

from repro.safety import BudgetEnvelope


def make_envelope(n=4, budget=440.0, max_cap=165.0):
    return BudgetEnvelope(n_units=n, budget_w=budget, max_cap_w=max_cap)


class TestConstruction:
    def test_validation(self):
        with pytest.raises(ValueError, match="n_units"):
            BudgetEnvelope(0, 100.0, 50.0)
        with pytest.raises(ValueError, match="budget_w"):
            BudgetEnvelope(2, 0.0, 50.0)
        with pytest.raises(ValueError, match="max_cap_w"):
            BudgetEnvelope(2, 100.0, -1.0)

    def test_cold_start_is_pessimistic(self):
        """Before any observation the hardware must be assumed uncapped."""
        env = make_envelope()
        assert np.all(env.applied_w == 165.0)
        assert not np.any(np.isfinite(env.commanded_w))
        assert not np.any(np.isfinite(env.dispatched_w))

    def test_cold_start_worst_case_is_tdp(self):
        env = make_envelope()
        committed = env.assess(np.full(4, 100.0))
        assert committed.worst_case_total_w == pytest.approx(4 * 165.0)
        assert committed.steady_total_w == pytest.approx(400.0)


class TestViews:
    def test_confirm_applied_promotes_dispatched(self):
        env = make_envelope()
        env.record_dispatched(slice(0, 2), np.array([100.0, 101.0]))
        env.confirm_applied(slice(0, 2))
        assert env.applied_w[0] == 100.0
        assert env.applied_w[1] == 101.0
        # Units never dispatched to keep the pessimistic prior.
        assert env.applied_w[2] == 165.0

    def test_confirm_applied_without_dispatch_is_noop(self):
        env = make_envelope()
        env.confirm_applied(slice(None))
        assert np.all(env.applied_w == 165.0)

    def test_worst_case_is_max_of_old_and_new(self):
        """Until the dispatch lands, a unit may still run at its old cap."""
        env = make_envelope()
        env.record_applied(slice(None), np.full(4, 110.0))
        committed = env.assess(np.array([90.0, 130.0, 110.0, 110.0]))
        assert committed.worst_case_w[0] == 110.0  # Old cap still possible.
        assert committed.worst_case_w[1] == 130.0  # New cap is higher.
        assert committed.steady_w[0] == 90.0

    def test_pending_pipeline_counts_at_max(self):
        env = make_envelope()
        env.record_applied(slice(None), np.full(4, 100.0))
        pending = [np.full(4, 120.0), np.full(4, 105.0)]
        committed = env.assess(np.full(4, 95.0), pending=pending)
        assert np.all(committed.worst_case_w == 120.0)

    def test_unreachable_holds_last(self):
        env = make_envelope()
        env.record_applied(slice(None), np.full(4, 100.0))
        env.record_dispatched(slice(None), np.full(4, 108.0))
        unreachable = np.array([True, False, False, False])
        committed = env.assess(np.full(4, 90.0), unreachable=unreachable)
        # Hold-last is the max of applied and the possibly-programmed
        # dispatch the dead daemon received just before it died.
        assert committed.worst_case_w[0] == 108.0
        assert committed.steady_w[0] == 108.0
        assert committed.steady_w[1] == 90.0

    def test_unreachable_assume_tdp(self):
        env = make_envelope()
        env.record_applied(slice(None), np.full(4, 100.0))
        unreachable = np.array([True, False, False, False])
        committed = env.assess(
            np.full(4, 90.0), unreachable=unreachable, assume_tdp=True
        )
        assert committed.worst_case_w[0] == 165.0
        assert committed.steady_w[0] == 165.0

    def test_shape_validation(self):
        env = make_envelope()
        with pytest.raises(ValueError, match="caps shape"):
            env.assess(np.zeros(3))
        with pytest.raises(ValueError, match="unreachable shape"):
            env.assess(np.zeros(4), unreachable=np.zeros(3, dtype=bool))
        with pytest.raises(ValueError, match="pending"):
            env.assess(np.zeros(4), pending=[np.zeros(5)])


class TestSnapshot:
    def test_round_trip_bit_exact(self):
        env = make_envelope()
        env.record_commanded(np.array([90.0, 91.5, 92.25, 93.0]))
        env.record_dispatched(slice(None), np.array([90.0, 91.5, 92.2, 93.0]))
        env.confirm_applied(slice(0, 2))
        doc = env.snapshot()
        fresh = make_envelope()
        fresh.restore(doc)
        np.testing.assert_array_equal(fresh.commanded_w, env.commanded_w)
        np.testing.assert_array_equal(fresh.dispatched_w, env.dispatched_w)
        np.testing.assert_array_equal(fresh.applied_w, env.applied_w)

    def test_restore_rejects_wrong_shape(self):
        doc = make_envelope(n=3).snapshot()
        with pytest.raises(ValueError, match="shape"):
            make_envelope(n=4).restore(doc)

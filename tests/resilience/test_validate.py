"""Reading validation against the stuck/dropout/spike taxonomy."""

import numpy as np
import pytest

from repro.resilience.validate import ReadingValidator, ValidatorConfig


def make(n=4, **kwargs):
    return ReadingValidator(n, ValidatorConfig(**kwargs)) if kwargs else (
        ReadingValidator(n)
    )


CAPS = np.full(4, 110.0)
EST = np.full(4, 100.0)


class TestValidatorConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"dropout_floor_w": -1.0},
            {"dropout_min_estimate_w": 0.5},  # below the floor
            {"spike_cap_slack": 0.9},
            {"spike_margin_w": -1.0},
            {"stuck_run": 1},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ValidatorConfig(**kwargs)


class TestDropout:
    def test_zero_reading_with_high_estimate_flagged(self):
        v = make()
        z = np.array([0.0, 100.0, 100.0, 100.0])
        res = v.validate(z, CAPS, EST)
        assert res.dropout.tolist() == [True, False, False, False]
        assert res.suspect[0]

    def test_zero_reading_with_idle_estimate_believed(self):
        """A unit genuinely idling near zero is not a dropout."""
        v = make()
        z = np.zeros(4)
        est = np.full(4, 2.0)  # below dropout_min_estimate_w
        assert not v.validate(z, CAPS, est).dropout.any()


class TestSpike:
    def test_reading_far_above_cap_flagged(self):
        v = make()
        z = np.array([300.0, 100.0, 100.0, 100.0])  # cap is 110 W
        res = v.validate(z, CAPS, EST)
        assert res.spike.tolist() == [True, False, False, False]

    def test_reading_slightly_above_cap_tolerated(self):
        """Actuation lag and noise keep sub-threshold overshoot unflagged."""
        v = make()
        z = np.full(4, 120.0)  # under 110 * 1.1 + 15
        assert not v.validate(z, CAPS, EST).spike.any()


class TestStuck:
    def test_exact_repeats_flag_after_run(self):
        v = make(stuck_run=3)
        z = np.array([50.0, 50.1, 50.2, 50.3])
        assert not v.validate(z, CAPS, EST).stuck.any()
        assert not v.validate(z, CAPS, EST).stuck.any()
        assert v.validate(z, CAPS, EST).stuck.all()

    def test_any_change_resets_the_run(self):
        v = make(stuck_run=3)
        z = np.full(4, 50.0)
        v.validate(z, CAPS, EST)
        v.validate(z + 0.001, CAPS, EST)  # noise breaks the run
        assert not v.validate(z, CAPS, EST).stuck.any()

    def test_reset_forgets_history(self):
        v = make(stuck_run=2)
        z = np.full(4, 50.0)
        v.validate(z, CAPS, EST)
        v.reset()
        assert not v.validate(z, CAPS, EST).stuck.any()


class TestShapes:
    def test_wrong_shape_rejected(self):
        v = make()
        with pytest.raises(ValueError, match="shape"):
            v.validate(np.zeros(3), CAPS, EST)

    def test_bad_n_units(self):
        with pytest.raises(ValueError):
            ReadingValidator(0)

"""ResilientManager: sanitization, safe mode, and the budget invariant."""

import numpy as np
import pytest

from repro.core import create_manager
from repro.core.dps import DPSManager
from repro.resilience.manager import ResilientConfig, ResilientManager
from repro.resilience.validate import ValidatorConfig

N = 8
BUDGET = 110.0 * N


def bound(config=None, inner=None):
    mgr = ResilientManager(inner=inner, config=config)
    mgr.bind(N, BUDGET, 165.0, 30.0, rng=np.random.default_rng(3))
    return mgr


def healthy_readings(rng):
    return 100.0 + rng.normal(0.0, 1.0, N)


class TestRegistry:
    def test_registered_and_wraps_dps_by_default(self):
        mgr = create_manager("resilient")
        assert isinstance(mgr, ResilientManager)
        assert isinstance(mgr.inner, DPSManager)

    def test_forwards_inner_demand_requirement(self):
        oracle = create_manager("oracle")
        mgr = ResilientManager(inner=oracle)
        assert mgr.requires_demand == oracle.requires_demand


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"safe_fraction": 0.0},
            {"safe_fraction": 1.5},
            {"reengage_cycles": 0},
            {"reengage_fraction": 0.9},  # >= safe_fraction default
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ResilientConfig(**kwargs)


class TestSanitization:
    def test_suspect_readings_replaced_by_estimate(self):
        mgr = bound()
        rng = np.random.default_rng(0)
        for _ in range(5):
            mgr.step(healthy_readings(rng))
        z = healthy_readings(rng)
        z[0] = 0.0  # dropout
        z[1] = 400.0  # spike, far above any programmed cap
        mgr.step(z)
        info = mgr.last_resilience
        assert info.dropout[0] and info.spike[1]
        assert info.sanitized_w[0] > 50.0  # estimate, not the zero
        assert info.sanitized_w[1] < 200.0  # estimate, not the spike
        kinds = [e.detail for e in mgr.events.of_kind("reading_suspect")]
        assert "dropout" in kinds and "spike" in kinds

    def test_budget_invariant_under_garbage(self):
        mgr = bound()
        rng = np.random.default_rng(1)
        for _ in range(50):
            z = np.abs(rng.normal(100.0, 80.0, N))
            caps = mgr.step(z)
            assert caps.sum() <= BUDGET * (1 + 1e-9)


class TestSafeMode:
    CFG = ResilientConfig(safe_fraction=0.5, reengage_cycles=3)

    def test_mass_dropout_enters_safe_mode(self):
        mgr = bound(self.CFG)
        rng = np.random.default_rng(2)
        for _ in range(5):
            mgr.step(healthy_readings(rng))
        caps = mgr.step(np.zeros(N))  # every unit unobservable
        assert mgr.safe_mode
        # Safe mode is the constant allocation.
        np.testing.assert_allclose(caps, mgr.initial_cap_w)
        assert len(mgr.events.of_kind("safe_mode_entered")) == 1

    def test_reengages_after_clean_streak(self):
        mgr = bound(self.CFG)
        rng = np.random.default_rng(4)
        for _ in range(5):
            mgr.step(healthy_readings(rng))
        mgr.step(np.zeros(N))
        assert mgr.safe_mode
        for _ in range(self.CFG.reengage_cycles):
            assert mgr.safe_mode
            mgr.step(healthy_readings(rng))
        assert not mgr.safe_mode
        assert len(mgr.events.of_kind("safe_mode_exited")) == 1

    def test_dirty_cycle_resets_the_streak(self):
        mgr = bound(self.CFG)
        rng = np.random.default_rng(5)
        for _ in range(5):
            mgr.step(healthy_readings(rng))
        mgr.step(np.zeros(N))
        mgr.step(healthy_readings(rng))  # clean 1
        mgr.step(np.zeros(N))  # dirty — streak resets, still safe
        for _ in range(self.CFG.reengage_cycles - 1):
            mgr.step(healthy_readings(rng))
        assert mgr.safe_mode  # one short of the required streak

    def test_rebind_clears_state(self):
        mgr = bound(self.CFG)
        mgr.step(np.zeros(N))
        mgr.bind(N, BUDGET, 165.0, 30.0, rng=np.random.default_rng(9))
        assert not mgr.safe_mode
        assert len(mgr.events) == 0

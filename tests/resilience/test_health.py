"""Client health state machine: quarantine, backoff, rejoin."""

import pytest

from repro.resilience.health import (
    FALLBACK_POLICIES,
    ClientHealth,
    HealthState,
    ResilienceConfig,
)


class TestResilienceConfig:
    def test_defaults_valid(self):
        cfg = ResilienceConfig()
        assert cfg.fallback in FALLBACK_POLICIES

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_retries": 0},
            {"backoff_cycles": 0},
            {"backoff_factor": 0.5},
            {"fallback": "guess"},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ResilienceConfig(**kwargs)

    def test_rejoin_window_grows_exponentially(self):
        cfg = ResilienceConfig(backoff_cycles=4, backoff_factor=2.0)
        assert cfg.rejoin_window(1) == 4
        assert cfg.rejoin_window(2) == 8
        assert cfg.rejoin_window(3) == 16

    def test_rejoin_window_needs_a_failure(self):
        with pytest.raises(ValueError):
            ResilienceConfig().rejoin_window(0)


class TestClientHealth:
    def test_starts_healthy(self):
        h = ClientHealth(ResilienceConfig())
        assert h.state is HealthState.HEALTHY
        assert not h.quarantined

    def test_failure_degrades_with_window(self):
        h = ClientHealth(ResilienceConfig(backoff_cycles=3))
        assert h.record_failure() is HealthState.DEGRADED
        assert h.quarantined
        assert h.window_cycles == 3

    def test_window_expiry_declares_dead(self):
        h = ClientHealth(ResilienceConfig(backoff_cycles=2))
        h.record_failure()
        assert h.tick() is HealthState.DEGRADED
        assert h.tick() is HealthState.DEAD

    def test_max_retries_is_immediately_dead(self):
        h = ClientHealth(ResilienceConfig(max_retries=2))
        h.record_failure()
        assert h.record_failure() is HealthState.DEAD

    def test_rejoin_from_degraded_and_dead(self):
        for failures in (1, 5):
            h = ClientHealth(ResilienceConfig(max_retries=3))
            for _ in range(failures):
                h.record_failure()
            h.rejoin()
            assert h.state is HealthState.HEALTHY
            assert h.rejoins == 1

    def test_rejoin_from_healthy_rejected(self):
        h = ClientHealth(ResilienceConfig())
        with pytest.raises(RuntimeError):
            h.rejoin()

    def test_success_resets_retry_budget(self):
        h = ClientHealth(ResilienceConfig(max_retries=3))
        h.record_failure()
        h.rejoin()
        h.record_success()
        assert h.consecutive_failures == 0
        # A fresh failure degrades again instead of accumulating to DEAD.
        assert h.record_failure() is HealthState.DEGRADED

    def test_flapping_client_converges_to_dead(self):
        """Rejoin alone does not reset retries; only a clean poll does."""
        h = ClientHealth(ResilienceConfig(max_retries=3))
        h.record_failure()
        h.rejoin()
        h.record_failure()
        h.rejoin()
        assert h.record_failure() is HealthState.DEAD
        assert h.total_failures == 3

"""Controller crash-recovery acceptance: kill → restart → warm resume.

The bar (mirrors docs/resilience.md "Layer 3"): a controller killed
mid-run over real loopback TCP is restarted by the supervisor, restores
from checkpoint + journal, every post-restart *decision* cycle satisfies
the budget, and harmonic-mean progress stays within 2% of an
uninterrupted run.
"""

import json

import numpy as np
import pytest

from repro.cluster.cluster import Cluster
from repro.core.config import ClusterSpec, RaplConfig
from repro.core.managers import create_manager
from repro.deploy.loopback import ChaosSchedule, RecoveryOptions, run_loopback

SPEC = ClusterSpec(n_nodes=2, sockets_per_node=2)
#: Long enough that the bounded re-convergence transient after the
#: demand flip (the recovered controller missed the outage's readings,
#: so its state diverges briefly) stays well inside the 2% budget.
CYCLES = 160
#: Clients program caps from 3-byte wire messages quantized to 0.1 W, so
#: each unit's hardware-held cap may round up by at most 0.05 W.
WIRE_SLACK_W = 0.05 * SPEC.n_units


def quiet_cluster(seed=0):
    return Cluster(
        SPEC, RaplConfig(noise_std_w=0.0), np.random.default_rng(seed)
    )


def demand_fn(step):
    # A mid-run load flip so the controller state being recovered matters.
    if step < 60:
        return np.array([160.0, 160.0, 40.0, 40.0])
    return np.array([40.0, 40.0, 160.0, 160.0])


def hmean_progress(power_history):
    unit_mean = power_history.mean(axis=0)
    return len(unit_mean) / np.sum(1.0 / unit_mean)


def assert_budget_respected(result):
    """Decision cycles meet the budget exactly; outage cycles hold the
    hardware's last programmed (wire-quantized) caps."""
    sums = result.caps_history.sum(axis=1)
    decided = ~np.isnan(result.readings_history).any(axis=1)
    assert np.all(sums[decided] <= SPEC.budget_w * (1 + 1e-9))
    assert np.all(sums[~decided] <= SPEC.budget_w + WIRE_SLACK_W)


class TestControllerKill:
    def test_kill_restart_warm_resume_within_two_percent(self, tmp_path):
        baseline = run_loopback(
            quiet_cluster(seed=4),
            create_manager("dps"),
            demand_fn=demand_fn,
            cycles=CYCLES,
            rng=np.random.default_rng(1),
        )

        result = run_loopback(
            quiet_cluster(seed=4),
            create_manager("dps"),
            demand_fn=demand_fn,
            cycles=CYCLES,
            rng=np.random.default_rng(1),
            chaos=ChaosSchedule(controller_kill_at=(47,)),
            recovery=RecoveryOptions(
                checkpoint_dir=tmp_path,
                checkpoint_every=5,
                restart_delay_cycles=2,
                hang_timeout_s=10.0,
            ),
        )
        # Artifacts for CI upload on failure: the structured event stream
        # next to the checkpoint generations already in tmp_path.
        (tmp_path / "events.json").write_text(
            json.dumps(
                [
                    [e.time_s, e.kind, e.unit, e.node_id, e.detail]
                    for e in result.events
                ]
            ),
            encoding="utf-8",
        )

        assert result.controller_restarts == 1
        assert result.checkpoints_written > 0
        assert result.journal_replayed > 0
        kinds = [e.kind for e in result.events]
        for kind in (
            "controller_killed",
            "controller_restarted",
            "restore_performed",
            "journal_replayed",
        ):
            assert kind in kinds

        assert_budget_respected(result)
        # Outage cycles exist and are exactly the NaN-readings rows.
        outage = np.isnan(result.readings_history).any(axis=1)
        assert 0 < outage.sum() <= 5

        ratio = hmean_progress(result.power_history) / hmean_progress(
            baseline.power_history
        )
        assert ratio > 0.98, f"progress ratio {ratio:.4f} below 2% bound"

    def test_kill_without_recovery_options_rejected(self):
        with pytest.raises(ValueError, match="recovery"):
            run_loopback(
                quiet_cluster(),
                create_manager("dps"),
                demand_fn=demand_fn,
                cycles=10,
                chaos=ChaosSchedule(controller_kill_at=(5,)),
            )

    def test_exhausted_restart_budget_propagates(self, tmp_path):
        from repro.recovery.supervisor import ControllerCrash

        with pytest.raises(ControllerCrash):
            run_loopback(
                quiet_cluster(),
                create_manager("dps"),
                demand_fn=demand_fn,
                cycles=30,
                chaos=ChaosSchedule(controller_kill_at=(3, 6, 9)),
                recovery=RecoveryOptions(
                    checkpoint_dir=tmp_path, max_restarts=1
                ),
            )


class TestControllerHang:
    def test_hang_detected_and_restarted(self, tmp_path):
        result = run_loopback(
            quiet_cluster(seed=2),
            create_manager("dps"),
            demand_fn=demand_fn,
            cycles=60,
            rng=np.random.default_rng(1),
            chaos=ChaosSchedule(controller_hang_at=(20,)),
            recovery=RecoveryOptions(
                checkpoint_dir=tmp_path,
                checkpoint_every=5,
                restart_delay_cycles=2,
                hang_timeout_s=0.5,
            ),
        )
        assert result.controller_restarts == 1
        kinds = [e.kind for e in result.events]
        assert "controller_hung" in kinds
        assert "restore_performed" in kinds
        assert_budget_respected(result)


class TestCheckpointedWithoutChaos:
    def test_recovery_options_alone_do_not_perturb_the_session(
        self, tmp_path
    ):
        # Caps cross real TCP and are applied by client threads, so two
        # sessions are not bit-identical (the manager-level guarantee is;
        # see tests/recovery/test_snapshot_property.py).  Checkpointing
        # must leave the session's *behavior* unchanged: no restarts, no
        # outage cycles, budget met, and progress equal to a plain run.
        plain = run_loopback(
            quiet_cluster(seed=9),
            create_manager("dps"),
            demand_fn=demand_fn,
            cycles=30,
            rng=np.random.default_rng(3),
        )
        checkpointed = run_loopback(
            quiet_cluster(seed=9),
            create_manager("dps"),
            demand_fn=demand_fn,
            cycles=30,
            rng=np.random.default_rng(3),
            recovery=RecoveryOptions(
                checkpoint_dir=tmp_path, checkpoint_every=5
            ),
        )
        assert checkpointed.controller_restarts == 0
        assert checkpointed.checkpoints_written == 6
        assert checkpointed.journal_replayed == 0
        assert not np.isnan(checkpointed.readings_history).any()
        assert_budget_respected(checkpointed)
        ratio = hmean_progress(checkpointed.power_history) / hmean_progress(
            plain.power_history
        )
        assert ratio == pytest.approx(1.0, abs=0.01)

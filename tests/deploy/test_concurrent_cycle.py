"""The concurrent fan-out/fan-in control cycle.

Covers the tentpole guarantees: a straggling client delays nobody's
poll, a mid-collection disconnect quarantines only the offender, and the
cycle's phase timings are surfaced — plus the reading/cap integrity
regressions (duplicate unit ids, negative/NaN caps) and the determinism
bar: a concurrent session's trace equals the sequential baseline's,
cycle for cycle.
"""

import threading
import time

import numpy as np
import pytest

from repro.cluster.cluster import Cluster
from repro.comm.protocol import MSG_CAP, MSG_READING, decode, encode
from repro.core.config import ClusterSpec, RaplConfig
from repro.core.managers import PowerManager
from repro.deploy import framing
from repro.deploy.loopback import run_loopback
from repro.deploy.server import DeployServer
from tests.deploy.test_server_robustness import RawClient, bound_manager


def registered_clients(server, n_clients, units_each=1):
    """Connect and HELLO ``n_clients`` raw clients, one node id apiece."""
    clients = []
    t = threading.Thread(target=lambda: server.accept_clients(n_clients))
    t.start()
    for node_id in range(n_clients):
        client = RawClient(server.address)
        client.hello(node_id=node_id, n_units=units_each)
        clients.append(client)
    t.join(2.0)
    return clients


def answer_poll(client, n_units=1, delay_s=0.0, value_w=100.0):
    """One raw client's side of a cycle: POLL -> READINGS -> CAPS."""
    assert framing.recv_tag(client.sock) == framing.FRAME_POLL
    if delay_s:
        time.sleep(delay_s)
    framing.send_batch(
        client.sock,
        framing.FRAME_READINGS,
        [encode(MSG_READING, u, value_w) for u in range(n_units)],
    )
    return framing.recv_batch(client.sock, framing.FRAME_CAPS)


class TestFanOut:
    def test_straggler_does_not_delay_other_polls(self):
        """POLL reaches every client before any answer is awaited, and the
        cycle's wall time is the straggler's delay, not a sum."""
        with DeployServer(bound_manager(n_units=3), timeout_s=2.0) as server:
            clients = registered_clients(server, 3)
            poll_at = {}
            t0 = time.monotonic()

            def serve(node_id, delay_s):
                client = clients[node_id]
                assert framing.recv_tag(client.sock) == framing.FRAME_POLL
                poll_at[node_id] = time.monotonic() - t0
                if delay_s:
                    time.sleep(delay_s)
                framing.send_batch(
                    client.sock,
                    framing.FRAME_READINGS,
                    [encode(MSG_READING, 0, 100.0)],
                )
                framing.recv_batch(client.sock, framing.FRAME_CAPS)

            threads = [
                threading.Thread(target=serve, args=(nid, delay))
                for nid, delay in ((0, 0.0), (1, 0.4), (2, 0.0))
            ]
            for t in threads:
                t.start()
            start = time.monotonic()
            stats = server.control_cycle()
            elapsed = time.monotonic() - start
            for t in threads:
                t.join(2.0)
            for client in clients:
                client.close()

            assert stats.n_healthy == 3
            assert stats.quarantined == ()
            # Fan-out: everyone was polled promptly, straggler included.
            assert all(at < 0.2 for at in poll_at.values()), poll_at
            # Fan-in: wall time tracks the one straggler, not a chain.
            assert 0.35 <= elapsed < 1.0
            # The wait shows up in the collect phase of the timer.
            assert stats.timings.collect_s > 0.3
            assert stats.timings.poll_s < 0.1

    def test_straggler_past_deadline_is_quarantined_alone(self):
        """A client slower than the cycle deadline misses it and takes the
        quarantine path; its peers' cycle is unaffected."""
        with DeployServer(bound_manager(n_units=2), timeout_s=0.3) as server:
            clients = registered_clients(server, 2)
            done = []

            def fast(client):
                done.append(answer_poll(client))

            def slow(client):
                assert framing.recv_tag(client.sock) == framing.FRAME_POLL
                time.sleep(0.8)  # Well past the deadline.

            threads = [
                threading.Thread(target=fast, args=(clients[0],)),
                threading.Thread(target=slow, args=(clients[1],)),
            ]
            for t in threads:
                t.start()
            stats = server.control_cycle()
            for t in threads:
                t.join(2.0)
            for client in clients:
                client.close()

            assert stats.quarantined == (1,)
            assert stats.n_healthy == 1
            assert stats.fallback_units == 1
            assert done, "the fast client must have been served"
            quarantines = server.events.of_kind("client_quarantined")
            assert quarantines and "deadline" in quarantines[0].detail

    def test_mid_collection_disconnect_quarantines_offender_only(self):
        with DeployServer(bound_manager(n_units=2), timeout_s=1.0) as server:
            clients = registered_clients(server, 2)

            def vanish(client):
                framing.recv_tag(client.sock)  # POLL arrives...
                client.close()  # ...and the daemon dies mid-collection.

            threads = [
                threading.Thread(target=vanish, args=(clients[0],)),
                threading.Thread(target=answer_poll, args=(clients[1],)),
            ]
            for t in threads:
                t.start()
            stats = server.control_cycle()
            for t in threads:
                t.join(2.0)
            clients[1].close()

            assert stats.quarantined == (0,)
            assert stats.n_healthy == 1
            assert np.all(np.isfinite(stats.readings_w))


class TestReadingsIntegrity:
    def test_duplicate_unit_ids_are_a_protocol_violation(self):
        """A batch with the right *count* but a duplicated unit id must
        quarantine the client and leave no garbage in the vector."""
        with DeployServer(bound_manager(n_units=2), timeout_s=1.0) as server:
            clients = registered_clients(server, 1, units_each=2)
            client = clients[0]

            def duplicate():
                assert framing.recv_tag(client.sock) == framing.FRAME_POLL
                framing.send_batch(
                    client.sock,
                    framing.FRAME_READINGS,
                    [
                        encode(MSG_READING, 0, 100.0),
                        encode(MSG_READING, 0, 90.0),  # Unit 1 missing.
                    ],
                )

            t = threading.Thread(target=duplicate)
            t.start()
            stats = server.control_cycle()
            t.join(2.0)
            client.close()

            assert stats.quarantined == (0,)
            assert stats.fallback_units == 2
            quarantines = server.events.of_kind("client_quarantined")
            assert quarantines and "duplicate" in quarantines[0].detail
            # The vector holds the hold-last seed (the equal-share prior
            # on a first cycle), not uninitialized memory: neither of the
            # batch's values may have landed.
            assert stats.readings_w == pytest.approx([110.0, 110.0])

    def test_valid_batch_in_any_unit_order_is_accepted(self):
        """Unit order within a batch is the client's choice; coverage is
        what the server checks."""
        with DeployServer(bound_manager(n_units=2), timeout_s=1.0) as server:
            clients = registered_clients(server, 1, units_each=2)
            client = clients[0]

            def reversed_units():
                assert framing.recv_tag(client.sock) == framing.FRAME_POLL
                framing.send_batch(
                    client.sock,
                    framing.FRAME_READINGS,
                    [
                        encode(MSG_READING, 1, 90.0),
                        encode(MSG_READING, 0, 100.0),
                    ],
                )
                framing.recv_batch(client.sock, framing.FRAME_CAPS)

            t = threading.Thread(target=reversed_units)
            t.start()
            stats = server.control_cycle()
            t.join(2.0)
            client.close()

            assert stats.quarantined == ()
            assert stats.readings_w == pytest.approx([100.0, 90.0])


class _RiggedManager(PowerManager):
    """A manager whose step returns a fixed vector, bypassing the base
    class's clipping — the shape of a server-side decision bug."""

    name = "rigged"

    def __init__(self, caps):
        super().__init__()
        self._rigged = np.asarray(caps, dtype=np.float64)

    def _decide(self, power_w, demand_w):
        return self._rigged.copy()

    def step(self, power_w, demand_w=None):
        self._caps = self._rigged.copy()
        return self._rigged.copy()


def rigged_server(caps, timeout_s=1.0):
    mgr = _RiggedManager(caps)
    n = len(caps)
    mgr.bind(n, 500.0 * n, 165.0, 0.0, rng=np.random.default_rng(0))
    return DeployServer(mgr, timeout_s=timeout_s)


class TestCapDispatch:
    def test_negative_cap_is_clamped_not_quarantined(self):
        """A manager bug emitting a negative cap must not take down the
        healthy client that would have received it."""
        with rigged_server([-5.0, 100.0]) as server:
            clients = registered_clients(server, 1, units_each=2)
            received = []

            def serve():
                received.extend(answer_poll(clients[0], n_units=2))

            t = threading.Thread(target=serve)
            t.start()
            stats = server.control_cycle()
            t.join(2.0)
            clients[0].close()

            assert stats.quarantined == ()
            assert stats.n_healthy == 1
            assert stats.caps_clamped == 1
            clamps = server.events.of_kind("cap_clamped")
            assert len(clamps) == 1
            assert clamps[0].unit == 0 and "->0.0" in clamps[0].detail
            caps = sorted(decode(p) for p in received)
            assert caps[0] == (MSG_CAP, 0, 0.0)
            assert caps[1] == (MSG_CAP, 1, 100.0)

    def test_over_ceiling_cap_is_clamped_with_event(self):
        with rigged_server([450.0, 100.0]) as server:
            clients = registered_clients(server, 1, units_each=2)
            t = threading.Thread(
                target=lambda: answer_poll(clients[0], n_units=2)
            )
            t.start()
            stats = server.control_cycle()
            t.join(2.0)
            clients[0].close()

            assert stats.caps_clamped == 1
            clamps = server.events.of_kind("cap_clamped")
            assert clamps and "->409.5" in clamps[0].detail
            assert server.total_caps_clamped == 1

    @pytest.mark.parametrize("bad", [float("nan"), float("inf")])
    def test_non_finite_cap_fails_loudly(self, bad):
        """NaN/inf caps are server-side bugs: the cycle raises instead of
        quarantining whichever client the send loop reached first."""
        with rigged_server([bad, 100.0]) as server:
            clients = registered_clients(server, 1, units_each=2)

            def serve():
                assert framing.recv_tag(clients[0].sock) == framing.FRAME_POLL
                framing.send_batch(
                    clients[0].sock,
                    framing.FRAME_READINGS,
                    [encode(MSG_READING, u, 90.0) for u in range(2)],
                )

            t = threading.Thread(target=serve)
            t.start()
            with pytest.raises(RuntimeError, match="non-finite"):
                server.control_cycle()
            t.join(2.0)
            clients[0].close()
            # The client did nothing wrong: no quarantine was recorded.
            assert not server.events.of_kind("client_quarantined")


class TestDeterminism:
    SPEC = ClusterSpec(n_nodes=2, sockets_per_node=2)

    def _session(self, poll_mode):
        cluster = Cluster(
            self.SPEC, RaplConfig(), np.random.default_rng(3)
        )
        demands = np.random.default_rng(5).uniform(
            30.0, 160.0, size=(8, cluster.n_units)
        )
        from repro.core.managers import create_manager

        return run_loopback(
            cluster,
            create_manager("dps"),
            demand_fn=lambda step: demands[step],
            cycles=8,
            rng=np.random.default_rng(0),
            poll_mode=poll_mode,
        )

    def test_concurrent_session_is_reproducible(self):
        a = self._session("concurrent")
        b = self._session("concurrent")
        assert np.array_equal(a.caps_history, b.caps_history)
        assert np.array_equal(a.readings_history, b.readings_history)
        assert np.array_equal(a.power_history, b.power_history)

    def test_concurrent_trace_equals_sequential_baseline(self):
        """Collection order is an I/O detail: the fan-out/fan-in cycle
        must produce the sequential baseline's session trace exactly."""
        con = self._session("concurrent")
        seq = self._session("sequential")
        assert np.array_equal(con.caps_history, seq.caps_history)
        assert np.array_equal(con.readings_history, seq.readings_history)
        assert np.array_equal(con.power_history, seq.power_history)
        assert con.bytes_total == seq.bytes_total

    def test_rejects_unknown_poll_mode(self):
        with pytest.raises(ValueError, match="poll_mode"):
            DeployServer(bound_manager(), poll_mode="osmotic")


class TestPhaseTimings:
    def test_loopback_surfaces_cycle_timings(self):
        cluster = Cluster(
            ClusterSpec(n_nodes=2, sockets_per_node=2),
            RaplConfig(noise_std_w=0.0),
            np.random.default_rng(0),
        )
        from repro.core.managers import create_manager

        result = run_loopback(
            cluster,
            create_manager("slurm"),
            demand_fn=lambda step: np.full(4, 100.0),
            cycles=5,
        )
        assert len(result.timings) == 5
        cols = result.timings.as_columns()
        assert list(cols["cycle"]) == [1, 2, 3, 4, 5]
        for phase in ("rejoin_s", "poll_s", "collect_s", "decide_s",
                      "dispatch_s"):
            assert np.all(cols[phase] >= 0.0)
        assert np.all(cols["total_s"] > 0.0)

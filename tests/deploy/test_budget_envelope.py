"""Budget-safety envelope acceptance over the loopback TCP harness.

The bar (docs/resilience.md "Layer 4"): under the existing chaos
schedules — client kill/rejoin, faulty meters, controller crash — with
the envelope enabled, worst-case committed power never exceeds the
budget for more than one consecutive control cycle, every excursion is
reported by a ``budget_*`` event, every enforcement names its ladder
rung, and the strict invariant monitors stay clean end to end.

Each session dumps its structured event log as JSON into the test's
tmp dir; the chaos-soak CI job runs with ``--basetemp`` under the
artifacts directory and uploads those logs when the job fails.
"""

import json

import numpy as np
import pytest

from repro.cluster.cluster import Cluster
from repro.core.config import ClusterSpec, RaplConfig
from repro.core.managers import create_manager
from repro.deploy.loopback import ChaosSchedule, RecoveryOptions, run_loopback
from repro.powercap.faults import FaultConfig, FaultyMeter
from repro.resilience.health import ResilienceConfig
from repro.safety import SafetyConfig
from repro.telemetry.log import SAFETY_EVENT_KINDS

SPEC = ClusterSpec(n_nodes=3, sockets_per_node=2)
STRICT = SafetyConfig(guard=True, invariant_mode="strict")
RUNG_KINDS = (
    "budget_shave_grants",
    "budget_scale_down",
    "budget_emergency_drop",
)


def run_session(
    chaos=None,
    fallback="hold-last",
    cycles=16,
    seed=11,
    manager_seed=1,
    faults=None,
    recovery=None,
    backoff_cycles=8,
):
    cluster = Cluster(
        SPEC, RaplConfig(noise_std_w=0.0), np.random.default_rng(seed)
    )
    if faults is not None:
        fault_rngs = np.random.default_rng(seed + 1).spawn(cluster.n_units)
        for sock, frng in zip(cluster.sockets, fault_rngs):
            sock.meter = FaultyMeter(sock.meter, faults, frng)
    demand = np.full(cluster.n_units, 150.0)
    return run_loopback(
        cluster,
        create_manager("dps"),
        lambda step: demand,
        cycles=cycles,
        rng=np.random.default_rng(manager_seed),
        chaos=chaos,
        resilience=ResilienceConfig(
            fallback=fallback, backoff_cycles=backoff_cycles
        ),
        recovery=recovery,
        safety=STRICT,
    )


def dump_events(result, tmp_path, name):
    """Write the session's event log where the CI artifact upload finds it."""
    rows = [
        {
            "time_s": e.time_s,
            "kind": e.kind,
            "node_id": e.node_id,
            "unit": e.unit,
            "detail": e.detail,
        }
        for e in result.events
    ]
    (tmp_path / f"{name}_events.json").write_text(json.dumps(rows, indent=1))


def assert_envelope_held(result, max_attempts=1):
    """The acceptance bar shared by every chaos session.

    * strict invariant monitors found nothing;
    * worst-case committed power never exceeded the budget on two
      consecutive control cycles of one server (each excursion is the
      bounded old-caps-still-held transient, gone once the next
      dispatch is acknowledged);
    * every enforcement event names a ladder rung.
    """
    assert not result.events.of_kind("invariant_violation")
    overshoots = result.events.of_kind("budget_overshoot")
    cycles = sorted({int(e.time_s) for e in overshoots})
    consecutive = [
        (a, b) for a, b in zip(cycles, cycles[1:]) if b - a == 1
    ]
    # Across a supervised restart the cycle counter resets, so adjacent
    # indices from different attempts may collide; allow one boundary
    # pair per extra attempt, never more.
    assert len(consecutive) <= max_attempts - 1, (
        f"worst-case committed power exceeded the budget on consecutive "
        f"cycles {consecutive}"
    )
    for event in overshoots:
        assert "overshoot=" in event.detail
    for kind in RUNG_KINDS:
        for event in result.events.of_kind(kind):
            assert "overshoot=" in event.detail
            assert "target=" in event.detail


class TestClientChaos:
    def test_kill_rejoin_hold_last(self, tmp_path):
        result = run_session(
            chaos=ChaosSchedule(kill_at={1: 3}, reconnect_at={1: 9}),
        )
        dump_events(result, tmp_path, "kill_rejoin_hold_last")
        assert_envelope_held(result)
        assert result.events.of_kind("client_quarantined")
        assert result.events.of_kind("client_rejoined")

    def test_kill_rejoin_assume_tdp_takes_ladder(self, tmp_path):
        """TDP accounting of a dead node shrinks the reachable share, so
        the guard must scale the live units down every quarantined
        cycle — and the budget still holds throughout."""
        result = run_session(
            chaos=ChaosSchedule(kill_at={1: 3}, reconnect_at={1: 9}),
            fallback="assume-tdp",
        )
        dump_events(result, tmp_path, "kill_rejoin_assume_tdp")
        assert_envelope_held(result)
        rungs = result.events.of_kind("budget_scale_down")
        assert rungs, "assume-tdp quarantine must force the ladder"
        # Enforcement runs exactly while the node is out of reach.
        quarantined_at = int(
            result.events.of_kind("client_quarantined")[0].time_s
        )
        rejoined_at = int(result.events.of_kind("client_rejoined")[0].time_s)
        for event in rungs:
            assert quarantined_at <= int(event.time_s) <= rejoined_at

    def test_faulty_meters(self, tmp_path):
        result = run_session(
            cycles=20,
            faults=FaultConfig(
                dropout_prob=0.05, spike_prob=0.05, stuck_prob=0.02
            ),
        )
        dump_events(result, tmp_path, "faulty_meters")
        assert_envelope_held(result)

    def test_faulty_meters_with_kill(self, tmp_path):
        result = run_session(
            cycles=20,
            chaos=ChaosSchedule(kill_at={2: 5}, reconnect_at={2: 12}),
            faults=FaultConfig(dropout_prob=0.05, spike_prob=0.05),
        )
        dump_events(result, tmp_path, "faulty_meters_with_kill")
        assert_envelope_held(result)


class TestControllerChaos:
    def test_controller_crash(self, tmp_path):
        result = run_session(
            cycles=24,
            chaos=ChaosSchedule(controller_kill_at=(8,)),
            recovery=RecoveryOptions(
                checkpoint_dir=tmp_path / "ckpt",
                checkpoint_every=4,
                restart_delay_cycles=2,
                hang_timeout_s=10.0,
            ),
        )
        dump_events(result, tmp_path, "controller_crash")
        assert result.controller_restarts == 1
        assert_envelope_held(result, max_attempts=2)
        # The restarted server's envelope restarts from the pessimistic
        # uncapped prior, so each attempt may report one cold-start
        # excursion and nothing more.
        overshoots = result.events.of_kind("budget_overshoot")
        assert len(overshoots) <= 2 * (1 + result.controller_restarts)


class TestObservability:
    def test_excursions_match_events(self, tmp_path):
        """Every excursion the session reports is a structured event of a
        registered safety kind — nothing silent, nothing ad hoc."""
        result = run_session(
            chaos=ChaosSchedule(kill_at={1: 3}, reconnect_at={1: 9}),
            fallback="assume-tdp",
        )
        dump_events(result, tmp_path, "observability")
        safety_kinds = {
            e.kind for e in result.events if e.kind in SAFETY_EVENT_KINDS
        }
        assert "budget_overshoot" in safety_kinds
        assert safety_kinds <= set(SAFETY_EVENT_KINDS)

    def test_disabled_envelope_emits_nothing(self):
        cluster = Cluster(
            SPEC, RaplConfig(noise_std_w=0.0), np.random.default_rng(11)
        )
        demand = np.full(cluster.n_units, 150.0)
        result = run_loopback(
            cluster,
            create_manager("dps"),
            lambda step: demand,
            cycles=6,
            rng=np.random.default_rng(1),
        )
        for kind in SAFETY_EVENT_KINDS:
            assert not result.events.of_kind(kind)

"""Fault tolerance of the TCP control plane, end to end.

These tests exercise the acceptance scenario of the resilience layer: a
client daemon killed mid-run must not cost the controller a single cycle,
the budget must hold throughout, and a reconnecting daemon must be
re-integrated through the HELLO-rejoin path.
"""

import threading
import time

import numpy as np

from repro.cluster.cluster import Cluster
from repro.core.config import ClusterSpec
from repro.core.managers import create_manager
from repro.deploy import framing
from repro.deploy.loopback import ChaosSchedule, run_loopback
from repro.deploy.server import DeployServer
from repro.resilience.health import HealthState, ResilienceConfig
from tests.deploy.test_server_robustness import RawClient, bound_manager

SPEC = ClusterSpec(n_nodes=3, sockets_per_node=2)


def run_chaos_session(chaos, cycles=12, fallback="hold-last",
                      backoff_cycles=6, demand=None):
    cluster = Cluster(SPEC, rng=np.random.default_rng(11))
    manager = create_manager("dps")
    if demand is None:
        demand = np.full(cluster.n_units, 150.0)
    return cluster, run_loopback(
        cluster,
        manager,
        lambda step: demand,
        cycles=cycles,
        rng=np.random.default_rng(0),
        chaos=chaos,
        resilience=ResilienceConfig(
            backoff_cycles=backoff_cycles, fallback=fallback
        ),
    )


class TestKilledClient:
    """The acceptance scenario: kill one daemon, finish the session."""

    CHAOS = ChaosSchedule(kill_at={1: 3}, reconnect_at={1: 6})

    def test_all_cycles_complete_with_budget_held(self):
        cluster, res = run_chaos_session(self.CHAOS)
        assert res.cycles == 12
        # The budget invariant must hold on every single cycle, including
        # the ones decided on fallback readings.
        per_cycle = res.caps_history.sum(axis=1)
        assert (per_cycle <= cluster.budget_w * (1 + 1e-6)).all()

    def test_quarantine_fallback_and_rejoin_are_logged(self):
        _, res = run_chaos_session(self.CHAOS)
        assert res.events.of_kind("client_quarantined")
        assert res.events.of_kind("fallback_applied")
        rejoined = res.events.of_kind("client_rejoined")
        assert [e.node_id for e in rejoined] == [1]
        assert res.fallback_cycles >= 2

    def test_client_reintegrates_after_reconnect(self):
        _, res = run_chaos_session(self.CHAOS)
        assert res.final_health == {
            0: HealthState.HEALTHY,
            1: HealthState.HEALTHY,
            2: HealthState.HEALTHY,
        }
        # After the rejoin the replacement daemon answers real polls:
        # node 1's units (2, 3) report live power again, not fallback.
        rejoin_cycle = int(res.events.of_kind("client_rejoined")[0].time_s)
        post = res.readings_history[rejoin_cycle:, 2:4]
        assert (post > 0.0).all()

    def test_assume_tdp_fallback_throttles_survivors(self):
        """Pessimistic fallback budgets the lost node at TDP, so the
        healthy units must get *less* than under hold-last."""
        chaos = ChaosSchedule(kill_at={1: 2})
        # Node 1 idles at 40 W while the survivors are hungry: hold-last
        # keeps reporting the idle draw (surplus shifts to survivors),
        # assume-tdp reports 165 W (the dead node hoards its share).
        demand = np.array([150.0, 150.0, 40.0, 40.0, 150.0, 150.0])
        _, hold = run_chaos_session(chaos, cycles=8, demand=demand)
        _, tdp = run_chaos_session(
            chaos, cycles=8, fallback="assume-tdp", demand=demand
        )
        survivors = [0, 1, 4, 5]
        assert (
            tdp.caps_history[-1, survivors].sum()
            < hold.caps_history[-1, survivors].sum()
        )

    def test_unreconnected_client_goes_dead(self):
        chaos = ChaosSchedule(kill_at={2: 1})
        _, res = run_chaos_session(chaos, cycles=12, backoff_cycles=2)
        assert res.final_health[2] is HealthState.DEAD
        dead = res.events.of_kind("client_dead")
        assert dead and dead[0].node_id == 2


class TestHangAndGarbage:
    def test_hung_client_is_quarantined_not_awaited_forever(self):
        """A client that stops responding trips the socket timeout and is
        quarantined; the cycle still completes."""
        mgr = bound_manager(n_units=2)
        with DeployServer(mgr, timeout_s=0.5) as server:
            client = RawClient(server.address)
            t = threading.Thread(target=lambda: server.accept_clients(1))
            t.start()
            client.hello(n_units=2)
            t.join(2.0)

            start = time.monotonic()
            stats = server.control_cycle()  # client never answers the POLL
            elapsed = time.monotonic() - start
            assert elapsed < 3.0
            assert stats.quarantined == (0,)
            assert stats.fallback_units == 2
            client.close()

    def test_garbage_frame_is_quarantined(self):
        mgr = bound_manager(n_units=2)
        with DeployServer(mgr, timeout_s=1.0) as server:
            client = RawClient(server.address)
            t = threading.Thread(target=lambda: server.accept_clients(1))
            t.start()
            client.hello(n_units=2)
            t.join(2.0)

            results = []
            t = threading.Thread(
                target=lambda: results.append(server.control_cycle())
            )
            t.start()
            framing.recv_tag(client.sock)  # POLL arrives...
            client.sock.sendall(b"\xff\xff\xff\xff\xff\xff")  # ...garbage.
            t.join(3.0)
            client.close()
            assert results and results[0].quarantined == (0,)
            quarantines = server.events.of_kind("client_quarantined")
            assert quarantines and quarantines[0].node_id == 0

    def test_unknown_node_cannot_rejoin(self):
        """Only a quarantined, previously registered node id may rejoin."""
        mgr = bound_manager(n_units=2)
        with DeployServer(mgr, timeout_s=1.0) as server:
            client = RawClient(server.address)
            t = threading.Thread(target=lambda: server.accept_clients(1))
            t.start()
            client.hello(node_id=0, n_units=2)
            t.join(2.0)

            intruder = RawClient(server.address)
            intruder.hello(node_id=7, n_units=2)

            results = []
            t = threading.Thread(
                target=lambda: results.append(server.control_cycle())
            )
            t.start()
            assert framing.recv_tag(client.sock) == framing.FRAME_POLL
            from repro.comm.protocol import MSG_READING, encode

            framing.send_batch(
                client.sock,
                framing.FRAME_READINGS,
                [encode(MSG_READING, 0, 100.0),
                 encode(MSG_READING, 1, 90.0)],
            )
            framing.recv_batch(client.sock, framing.FRAME_CAPS)
            t.join(3.0)
            assert results and results[0].rejoined == ()
            assert results[0].n_healthy == 1
            intruder.close()
            client.close()

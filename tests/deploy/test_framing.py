"""TCP frame encoding/decoding over socket pairs."""

import socket

import pytest

from repro.deploy import framing


@pytest.fixture
def pair():
    a, b = socket.socketpair()
    a.settimeout(2.0)
    b.settimeout(2.0)
    yield a, b
    a.close()
    b.close()


class TestHello:
    def test_round_trip(self, pair):
        a, b = pair
        framing.send_hello(a, node_id=7, n_units=2)
        hello = framing.recv_hello(b)
        assert hello == (7, 2)

    def test_rejects_wide_node_id(self, pair):
        a, _ = pair
        with pytest.raises(ValueError, match="node_id"):
            framing.send_hello(a, node_id=70000, n_units=2)

    def test_rejects_zero_units(self, pair):
        a, _ = pair
        with pytest.raises(ValueError, match="n_units"):
            framing.send_hello(a, node_id=1, n_units=0)

    def test_wrong_tag_raises(self, pair):
        a, b = pair
        framing.send_tag(a, framing.FRAME_POLL)
        with pytest.raises(ValueError, match="HELLO"):
            framing.recv_hello(b)


class TestBatch:
    def test_round_trip(self, pair):
        a, b = pair
        messages = [b"\x00\x01\x02", b"\x03\x04\x05"]
        sent = framing.send_batch(a, framing.FRAME_READINGS, messages)
        assert sent == 6
        assert framing.recv_batch(b, framing.FRAME_READINGS) == messages

    def test_tag_mismatch(self, pair):
        a, b = pair
        framing.send_batch(a, framing.FRAME_CAPS, [b"abc"])
        with pytest.raises(ValueError, match="expected"):
            framing.recv_batch(b, framing.FRAME_READINGS)

    def test_rejects_bad_message_size(self, pair):
        a, _ = pair
        with pytest.raises(ValueError, match="3 bytes"):
            framing.send_batch(a, framing.FRAME_CAPS, [b"toolong"])

    def test_rejects_empty_batch(self, pair):
        a, _ = pair
        with pytest.raises(ValueError, match="batch size"):
            framing.send_batch(a, framing.FRAME_CAPS, [])

    def test_rejects_non_batch_tag(self, pair):
        a, _ = pair
        with pytest.raises(ValueError, match="batch tag"):
            framing.send_batch(a, framing.FRAME_POLL, [b"abc"])


class TestControlTags:
    def test_poll_and_quit(self, pair):
        a, b = pair
        framing.send_tag(a, framing.FRAME_POLL)
        framing.send_tag(a, framing.FRAME_QUIT)
        assert framing.recv_tag(b) == framing.FRAME_POLL
        assert framing.recv_tag(b) == framing.FRAME_QUIT

    def test_rejects_batch_tag_as_control(self, pair):
        a, _ = pair
        with pytest.raises(ValueError, match="control tag"):
            framing.send_tag(a, framing.FRAME_CAPS)


class TestRecvExact:
    def test_eof_raises(self, pair):
        a, b = pair
        a.sendall(b"ab")
        a.close()
        with pytest.raises(ConnectionError, match="outstanding"):
            framing.recv_exact(b, 5)

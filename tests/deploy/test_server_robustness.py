"""DeployServer behaviour under misbehaving clients."""

import socket
import threading

import numpy as np
import pytest

from repro.comm.protocol import MSG_READING, encode
from repro.core.managers import create_manager
from repro.deploy import framing
from repro.deploy.server import DeployServer


def bound_manager(n_units=2):
    mgr = create_manager("constant")
    mgr.bind(n_units, 110.0 * n_units, 165.0, 30.0,
             rng=np.random.default_rng(0))
    return mgr


class RawClient:
    """A hand-driven client for protocol-violation tests."""

    def __init__(self, address):
        self.sock = socket.create_connection(address, timeout=2.0)

    def hello(self, node_id=0, n_units=2):
        framing.send_hello(self.sock, node_id, n_units)

    def close(self):
        self.sock.close()


class TestRegistration:
    def test_over_registration_rejected(self):
        with DeployServer(bound_manager(n_units=2)) as server:
            client = RawClient(server.address)
            errors = []

            def accept():
                try:
                    server.accept_clients(1)
                except ValueError as exc:
                    errors.append(exc)

            t = threading.Thread(target=accept)
            t.start()
            client.hello(n_units=3)  # One more than the manager is bound to.
            t.join(2.0)
            client.close()
            assert errors and "bound to" in str(errors[0])

    def test_cycle_requires_full_registration(self):
        with DeployServer(bound_manager(n_units=4)) as server:
            client = RawClient(server.address)
            t = threading.Thread(target=lambda: server.accept_clients(1))
            t.start()
            client.hello(n_units=2)  # Covers only half the units.
            t.join(2.0)
            with pytest.raises(RuntimeError, match="registered units"):
                server.control_cycle()
            client.close()

    def test_cycle_without_clients(self):
        with DeployServer(bound_manager()) as server:
            with pytest.raises(RuntimeError, match="no clients"):
                server.control_cycle()


class TestCycleViolations:
    def _registered(self, server):
        client = RawClient(server.address)
        t = threading.Thread(target=lambda: server.accept_clients(1))
        t.start()
        client.hello(n_units=2)
        t.join(2.0)
        return client

    def test_short_readings_batch_quarantines(self):
        with DeployServer(bound_manager(n_units=2)) as server:
            client = self._registered(server)
            results = []

            def cycle():
                results.append(server.control_cycle())

            t = threading.Thread(target=cycle)
            t.start()
            assert framing.recv_tag(client.sock) == framing.FRAME_POLL
            framing.send_batch(
                client.sock,
                framing.FRAME_READINGS,
                [encode(MSG_READING, 0, 100.0)],  # Only 1 of 2 units.
            )
            t.join(3.0)
            client.close()
            assert results, "cycle must complete despite the short batch"
            stats = results[0]
            assert stats.quarantined == (0,)
            assert stats.fallback_units == 2
            quarantines = server.events.of_kind("client_quarantined")
            assert quarantines and "readings" in quarantines[0].detail

    def test_client_disconnect_mid_cycle_quarantines(self):
        with DeployServer(bound_manager(n_units=2)) as server:
            client = self._registered(server)
            results = []

            def cycle():
                results.append(server.control_cycle())

            t = threading.Thread(target=cycle)
            t.start()
            framing.recv_tag(client.sock)  # POLL arrives...
            client.close()  # ...and the client dies.
            t.join(3.0)
            assert results, "cycle must survive a mid-cycle disconnect"
            stats = results[0]
            assert stats.quarantined == (0,)
            assert stats.n_healthy == 0
            assert server.events.of_kind("client_quarantined")

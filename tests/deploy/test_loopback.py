"""End-to-end TCP deployment on localhost."""

import numpy as np
import pytest

from repro.cluster.cluster import Cluster
from repro.core.config import ClusterSpec, RaplConfig
from repro.core.managers import create_manager
from repro.deploy.loopback import run_loopback

SPEC = ClusterSpec(n_nodes=2, sockets_per_node=2)


def quiet_cluster(seed=0):
    return Cluster(SPEC, RaplConfig(noise_std_w=0.0),
                   np.random.default_rng(seed))


class TestLoopback:
    def test_session_completes_cleanly(self):
        result = run_loopback(
            quiet_cluster(),
            create_manager("slurm"),
            demand_fn=lambda step: np.full(4, 100.0),
            cycles=10,
        )
        assert result.cycles == 10
        assert result.client_cycles == [10, 10]

    def test_traffic_is_three_bytes_per_unit_per_direction(self):
        result = run_loopback(
            quiet_cluster(),
            create_manager("constant"),
            demand_fn=lambda step: np.full(4, 80.0),
            cycles=5,
        )
        assert result.bytes_total == 5 * 4 * 3 * 2

    def test_caps_respond_to_demand_over_tcp(self):
        demand = np.array([160.0, 160.0, 25.0, 25.0])
        result = run_loopback(
            quiet_cluster(),
            create_manager("slurm"),
            demand_fn=lambda step: demand,
            cycles=20,
        )
        final = result.caps_history[-1]
        assert final[:2].mean() > 130.0   # Hungry node grew.
        assert final[2:].mean() < 60.0    # Idle node chased down.

    def test_dps_over_tcp(self):
        demand = np.array([160.0, 160.0, 40.0, 40.0])
        result = run_loopback(
            quiet_cluster(),
            create_manager("dps"),
            demand_fn=lambda step: demand,
            cycles=20,
        )
        assert result.caps_history[-1].sum() <= SPEC.budget_w * (1 + 1e-6)

    def test_readings_track_power(self):
        result = run_loopback(
            quiet_cluster(),
            create_manager("constant"),
            demand_fn=lambda step: np.full(4, 90.0),
            cycles=15,
        )
        # After the lag settles, decoded readings sit near the demand.
        assert result.readings_history[-1].mean() == pytest.approx(
            90.0, abs=2.0
        )

    def test_rejects_zero_cycles(self):
        with pytest.raises(ValueError, match="cycles"):
            run_loopback(
                quiet_cluster(),
                create_manager("constant"),
                demand_fn=lambda step: np.full(4, 80.0),
                cycles=0,
            )

    def test_budget_respected_across_cycles(self):
        rng = np.random.default_rng(1)
        demands = rng.uniform(20, 160, size=(12, 4))
        result = run_loopback(
            quiet_cluster(),
            create_manager("dps"),
            demand_fn=lambda step: demands[step],
            cycles=12,
        )
        assert np.all(
            result.caps_history.sum(axis=1) <= SPEC.budget_w * (1 + 1e-6)
        )

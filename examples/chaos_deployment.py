#!/usr/bin/env python3
"""Kill a client daemon mid-run and watch the control plane survive.

The real TCP control plane (server + per-node daemons over localhost
sockets) runs a 30-cycle session during which node 1's daemon is killed
at cycle 8 — the socket is severed without a QUIT, exactly like a crashed
process — and a replacement daemon reconnects at cycle 18.  The server
quarantines the node, serves fallback readings for its units, keeps the
cluster budget enforced on every cycle, and re-integrates the node
through the HELLO-rejoin path.

Run time: < 5 s.  Usage::

    python examples/chaos_deployment.py
"""

import numpy as np

from repro import Cluster, ClusterSpec, RaplConfig, create_manager
from repro.deploy import ChaosSchedule, run_loopback
from repro.resilience.health import ResilienceConfig


def main() -> None:
    spec = ClusterSpec(n_nodes=4, sockets_per_node=2)
    cluster = Cluster(spec, RaplConfig(), np.random.default_rng(8))
    manager = create_manager("dps")

    def demand(step: int) -> np.ndarray:
        return np.full(spec.n_units, 150.0)

    chaos = ChaosSchedule(kill_at={1: 8}, reconnect_at={1: 18})
    result = run_loopback(
        cluster,
        manager,
        demand,
        cycles=30,
        chaos=chaos,
        resilience=ResilienceConfig(backoff_cycles=15, fallback="hold-last"),
    )

    print(
        f"ran {result.cycles} TCP control cycles; node 1's daemon was "
        f"killed at cycle 8 and a replacement rejoined at cycle 18\n"
    )
    print("what the server logged:")
    for e in result.events:
        where = f"node {e.node_id}" if e.node_id is not None else ""
        detail = f"  ({e.detail})" if e.detail else ""
        print(f"  cycle {int(e.time_s):3d}  {e.kind:20s} {where}{detail}")

    budget_ok = (
        result.caps_history.sum(axis=1) <= cluster.budget_w * (1 + 1e-6)
    ).all()
    print(
        f"\nfallback cycles: {result.fallback_cycles}   "
        f"budget respected on every cycle: {budget_ok}"
    )
    print(
        "final health: "
        + ", ".join(
            f"node {n}: {s.value}" for n, s in sorted(result.final_health.items())
        )
    )


if __name__ == "__main__":
    main()

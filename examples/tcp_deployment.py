#!/usr/bin/env python3
"""Run the real TCP control plane: server + per-node client daemons.

This is the artifact's deployment architecture end to end — a central
DPS server and one client daemon per node, talking the 3-byte protocol
over actual localhost TCP sockets — with the simulated cluster standing in
for the hardware under the clients.  A demand step at cycle 10 shows the
caps re-converging live across the wire.

Run time: < 5 s.  Usage::

    python examples/tcp_deployment.py
"""

import numpy as np

from repro import Cluster, ClusterSpec, RaplConfig, create_manager
from repro.deploy import run_loopback


def main() -> None:
    spec = ClusterSpec(n_nodes=4, sockets_per_node=2)
    cluster = Cluster(spec, RaplConfig(), np.random.default_rng(8))
    manager = create_manager("dps")

    # Nodes 0-1 run hot from the start; nodes 2-3 surge at cycle 10.
    def demand(step: int) -> np.ndarray:
        d = np.full(spec.n_units, 40.0)
        d[:4] = 160.0
        if step >= 10:
            d[4:] = 160.0
        return d

    result = run_loopback(cluster, manager, demand, cycles=25)

    print(
        f"ran {result.cycles} TCP control cycles over "
        f"{len(result.client_cycles)} client daemons "
        f"({result.bytes_total} protocol bytes total)\n"
    )
    print("cycle  caps nodes 0-1   caps nodes 2-3   (mean W per socket)")
    for step in range(0, result.cycles, 3):
        caps = result.caps_history[step]
        print(
            f"{step:5d}  {caps[:4].mean():14.1f}   {caps[4:].mean():14.1f}"
        )
    final = result.caps_history[-1]
    print(
        f"\nafter the surge both halves converge near the constant cap "
        f"({spec.constant_cap_w:.0f} W): "
        f"{final[:4].mean():.1f} / {final[4:].mean():.1f} W"
    )


if __name__ == "__main__":
    main()

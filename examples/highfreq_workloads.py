#!/usr/bin/env python3
"""High-frequency power phases: where stateless managers lose (paper §6.1).

LR churns through sub-10 s power bursts (Figure 2c).  A stateless manager
chases them: it cuts the cap during each trough, so every burst starts
throttled — which is how SLURM ends up *below* constant allocation on LR
(paper: -4.0 %).  DPS's priority module counts prominent peaks in the power
history, flags the unit high-frequency, and pins it to high priority so its
cap stays up — the constant-allocation lower bound of §4.4.

This example runs LR against a low-power partner under both managers and
also reports how often DPS's frequency detector had LR's sockets flagged.

Run time: ~20 s.  Usage::

    python examples/highfreq_workloads.py
"""

import numpy as np

from repro import ExperimentConfig, ExperimentHarness, SimulationConfig


def main() -> None:
    config = ExperimentConfig(
        sim=SimulationConfig(time_scale=0.5, max_steps=1_000_000),
        repeats=2,
        seed=17,
    )
    harness = ExperimentHarness(config)
    pair = ("lr", "wordcount")

    print(f"pair: {pair[0]} (high-frequency) vs {pair[1]} (low-power)\n")
    for manager in ("slurm", "dps"):
        ev = harness.evaluate_pair(*pair, manager)
        print(
            f"{manager:6s}: lr spd={ev.speedup_a:.3f}  "
            f"wordcount spd={ev.speedup_b:.3f}  hmean={ev.hmean_speedup:.3f}"
        )

    # Fraction of steps DPS held LR's sockets at high priority.
    _, result = harness.run_pair(*pair, "dps", record_telemetry=True)
    tl = result.telemetry
    assert tl is not None
    warm = config.dps.priority.history_len
    lr_priority = tl.priority[warm:, :10]
    print(
        f"\nDPS held LR's sockets high-priority on "
        f"{100 * lr_priority.mean():.0f}% of steps after warm-up "
        f"(frequency pinning, Algorithm 2)."
    )
    caps = tl.caps_w[warm:, :10].mean()
    print(f"LR mean cap under DPS: {caps:.0f} W "
          f"(constant cap {config.cluster.constant_cap_w:.0f} W)")


if __name__ == "__main__":
    main()

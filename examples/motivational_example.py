#!/usr/bin/env python3
"""Reproduce the paper's Figure 1: the motivational two-node example.

Two nodes share a budget of 1.5x the per-node maximum.  Node 0 raises its
demand to the maximum at T1; node 1 follows at T3.  The figure contrasts how
four power managers divide the budget:

* constant allocation never moves (wasting budget at T1-T2);
* the oracle tracks demand exactly and splits evenly once both are high;
* the stateless (SLURM-style) manager gives node 0 the whole surplus and
  then *starves node 1 forever* — both nodes sit at their caps, so current
  power alone carries no signal that node 1 wants more;
* DPS sees node 1's rising power trend (the power dynamics) and re-equalizes
  the caps, landing where the oracle does.

Run time: < 1 s.  Usage::

    python examples/motivational_example.py
"""

from repro.experiments.figures import figure1
from repro.experiments.reporting import render_figure1


def main() -> None:
    data = figure1()
    print(render_figure1(data))

    slurm_t4 = data.caps["slurm"][-1]
    dps_t4 = data.caps["dps"][-1]
    print(
        f"\nAt T4 both nodes demand {data.demand[-1, 0]:.0f} W."
        f"\n  stateless leaves node1 at {slurm_t4[1]:.0f} W "
        f"(node0 holds {slurm_t4[0]:.0f} W) — the starvation of §1;"
        f"\n  DPS re-equalizes to {dps_t4[0]:.0f}/{dps_t4[1]:.0f} W, "
        "matching the perfect model-based system."
    )


if __name__ == "__main__":
    main()

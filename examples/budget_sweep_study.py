#!/usr/bin/env python3
"""Budget sweep — the evaluation the paper says it could not afford.

The paper evaluates one cluster power budget (66.7 % of aggregate TDP)
because each additional budget level cost 1,000+ machine-hours of cluster
time.  The simulator sweeps five budget levels in seconds and shows the
design claim holding everywhere: DPS stays at or above the
constant-allocation baseline at every budget, while the stateless SLURM
plugin's loss grows as the budget loosens (with ample budget, constant
allocation is already near-optimal and cap-chasing is pure downside).

Run time: ~30 s.  Usage::

    python examples/budget_sweep_study.py
"""

from repro import ExperimentConfig, SimulationConfig
from repro.experiments.charts import bar_chart
from repro.experiments.sweeps import budget_sweep


def main() -> None:
    config = ExperimentConfig(
        sim=SimulationConfig(time_scale=0.15, max_steps=2_000_000),
        repeats=2,
        seed=31,
    )
    fractions = (0.5, 0.6, 2 / 3, 0.8, 0.9)
    managers = ("slurm", "dps")
    points = budget_sweep(
        config,
        pair=("kmeans", "gmm"),
        budget_fractions=fractions,
        managers=managers,
    )
    by_key = {(p.parameter, p.manager): p for p in points}

    labels = [f"budget {f:.0%}" for f in fractions]
    series = {
        m: [by_key[(f, m)].hmean_speedup for f in fractions]
        for m in managers
    }
    print("kmeans/gmm paired hmean speedup vs constant allocation\n")
    print(bar_chart(series, labels, width=40))
    print(
        "\nReading: bars right of the axis beat constant allocation.\n"
        "DPS holds the lower bound at every budget; SLURM's loss grows\n"
        "as the budget loosens — dynamic reallocation must know when NOT\n"
        "to act, which is exactly what DPS's power dynamics provide."
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Record a workload's power trace, export it, and replay it as a workload.

Demonstrates the trace pipeline a real deployment would use: run an
application once uncapped while sampling RAPL (here: the simulator's
telemetry), serialize the trace to CSV, then replay it as a demand program
in any experiment — the replayed workload behaves like the original,
including stretching under caps.

Run time: ~10 s.  Usage::

    python examples/trace_replay.py
"""

import numpy as np

from repro import ClusterSpec, SimulationConfig
from repro.cluster.cluster import Cluster
from repro.cluster.simulator import Assignment, Simulation
from repro.core.managers import create_manager
from repro.workloads.registry import get_workload
from repro.workloads.traces import PowerTrace, record_trace, traced_workload


def run_solo(spec, cluster_spec, manager_name="constant",
             budget_fraction=1.0, seed=5, time_scale=0.2):
    cs = ClusterSpec(
        n_nodes=cluster_spec.n_nodes,
        sockets_per_node=cluster_spec.sockets_per_node,
        budget_fraction=budget_fraction,
    )
    cluster = Cluster(cs)
    sim = Simulation(
        cluster_spec=cs,
        manager=create_manager(manager_name),
        assignments=[Assignment(spec=spec, unit_ids=cluster.half_unit_ids(0))],
        target_runs=1,
        sim_config=SimulationConfig(time_scale=time_scale, max_steps=200_000),
        seed=seed,
        record_telemetry=True,
    )
    return sim.run()


def main() -> None:
    cluster_spec = ClusterSpec(n_nodes=4, sockets_per_node=2)

    # 1. Record bayes uncapped (caps at TDP).
    original = get_workload("bayes")
    result = run_solo(original, cluster_spec, budget_fraction=1.0)
    assert result.telemetry is not None
    trace = record_trace(result.telemetry, unit_id=0, name="bayes-replay")
    print(
        f"recorded {len(trace.time_s)} samples, "
        f"{trace.power_w.min():.0f}-{trace.power_w.max():.0f} W, "
        f"duration {trace.duration_s:.0f}s"
    )

    # 2. Round-trip through CSV (what a real RAPL sampler would produce).
    csv_text = trace.to_csv()
    restored = PowerTrace.from_csv(csv_text, name="bayes-replay")
    print(f"CSV round trip: {len(csv_text.splitlines()) - 1} rows")

    # 3. Replay under a binding budget and compare to the original program.
    # The trace was recorded at time_scale 0.2, so the replay runs at
    # scale 1.0 — it is already in compressed time.
    replayed_spec = traced_workload(restored)
    capped_original = run_solo(original, cluster_spec, budget_fraction=2 / 3)
    capped_replay = run_solo(
        replayed_spec, cluster_spec, budget_fraction=2 / 3, time_scale=1.0
    )
    d_orig = capped_original.durations["bayes"]
    d_replay = capped_replay.durations["bayes-replay"]
    print(
        f"constant-cap duration: original program {d_orig:.0f}s, "
        f"replayed trace {d_replay:.0f}s "
        f"({100 * abs(d_orig - d_replay) / d_orig:.1f}% apart)"
    )
    assert np.isclose(d_orig, d_replay, rtol=0.25)


if __name__ == "__main__":
    main()

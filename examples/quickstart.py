#!/usr/bin/env python3
"""Quickstart: compare DPS against SLURM on one contended workload pair.

Runs the paper's headline scenario — a phased Spark workload (kmeans)
sharing a power-capped cluster with the always-hungry GMM — under constant
allocation, the SLURM power plugin, and DPS, then prints normalized
performance and fairness.

Expected output shape (paper §6.2): SLURM starves the phased workload below
the constant-allocation baseline while DPS holds the constant-allocation
lower bound for it *and* speeds up GMM, with fairness near 1.

Run time: ~15 s.  Usage::

    python examples/quickstart.py
"""

from repro import ExperimentConfig, ExperimentHarness, SimulationConfig


def main() -> None:
    config = ExperimentConfig(
        sim=SimulationConfig(time_scale=0.5, max_steps=1_000_000),
        repeats=2,
        seed=7,
    )
    harness = ExperimentHarness(config)

    pair = ("kmeans", "gmm")
    print(f"pair: {pair[0]} (cluster half 0) vs {pair[1]} (cluster half 1)")
    print(
        f"budget: {config.cluster.budget_w:.0f} W over "
        f"{config.cluster.n_units} sockets "
        f"(constant cap {config.cluster.constant_cap_w:.0f} W)\n"
    )

    header = (
        f"{'manager':10s} {'kmeans spd':>10s} {'gmm spd':>8s} "
        f"{'hmean':>6s} {'fairness':>8s}"
    )
    print(header)
    print("-" * len(header))
    for manager in ("constant", "slurm", "dps"):
        ev = harness.evaluate_pair(*pair, manager)
        print(
            f"{manager:10s} {ev.speedup_a:10.3f} {ev.speedup_b:8.3f} "
            f"{ev.hmean_speedup:6.3f} {ev.fairness:8.3f}"
        )

    print(
        "\nReading: speedups are normalized to constant allocation "
        "(1.0 = baseline).\nDPS should hold >= ~1.0 for kmeans (the "
        "constant-allocation lower bound)\nwhile SLURM drops well below it, "
        "and DPS fairness should be near 1."
    )


if __name__ == "__main__":
    main()

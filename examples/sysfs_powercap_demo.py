#!/usr/bin/env python3
"""Drive the simulated RAPL domains through the sysfs powercap ABI.

Shows the substrate-level interface a real DPS client uses on Linux:
reading ``energy_uj`` counters, deriving power from counter differences
(wrap-corrected), and writing ``constraint_0_power_limit_uw`` to cap a
socket.  Everything below the sysfs paths is the simulator; code written
against this surface would run unmodified on real ``/sys/class/powercap``.

Run time: < 1 s.  Usage::

    python examples/sysfs_powercap_demo.py
"""

import numpy as np

from repro import Cluster, ClusterSpec


def read_power_w(fs, zone: str, last_uj: int, dt_s: float) -> tuple[float, int]:
    """Power over the last interval from two energy_uj reads."""
    now_uj = int(fs.read(f"{zone}/energy_uj"))
    wrap = int(fs.read(f"{zone}/max_energy_range_uj"))
    delta = now_uj - last_uj
    if delta < 0:  # Counter wrapped.
        delta += wrap
    return delta / dt_s * 1e-6, now_uj


def main() -> None:
    cluster = Cluster(ClusterSpec(n_nodes=1, sockets_per_node=2),
                      rng=np.random.default_rng(3))
    fs = cluster.sysfs()
    zones = fs.list_zones()
    dt = 1.0

    print("powercap zones:")
    for z in zones:
        print(
            f"  {z}  name={fs.read(z + '/name')}  "
            f"limit={int(fs.read(z + '/constraint_0_power_limit_uw')) / 1e6:.0f} W  "
            f"max={int(fs.read(z + '/constraint_0_max_power_uw')) / 1e6:.0f} W"
        )

    # Let socket 0 demand 150 W, then cap it to 90 W via the sysfs write.
    zone = zones[0]
    last = int(fs.read(zone + "/energy_uj"))
    print("\nuncapped, demand 150 W:")
    for _ in range(4):
        cluster.step_physics(np.array([150.0, 12.0]), dt)
        power, last = read_power_w(fs, zone, last, dt)
        print(f"  power = {power:6.1f} W")

    print("\nwrite constraint_0_power_limit_uw = 90000000 (90 W):")
    fs.write(zone + "/constraint_0_power_limit_uw", "90000000")
    for _ in range(4):
        cluster.step_physics(np.array([150.0, 12.0]), dt)
        power, last = read_power_w(fs, zone, last, dt)
        print(f"  power = {power:6.1f} W   (capped)")

    try:
        fs.write(zone + "/energy_uj", "0")
    except PermissionError as exc:
        print(f"\nwriting energy_uj correctly refused: {exc}")


if __name__ == "__main__":
    main()

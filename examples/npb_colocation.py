#!/usr/bin/env python3
"""Spark x NPB co-location study (paper §6.3) with a starvation timeline.

Pairs a phased Spark workload with a sustained-high-power NPB kernel, runs
SLURM and DPS, and prints (a) the normalized performance of both sides and
(b) a timeline excerpt showing the mechanism: under SLURM the Spark side's
caps collapse during its quiet phase and never recover once the NPB side
holds the budget; under DPS the priority module detects the Spark side's
rising power and the cap-readjusting module re-equalizes.

Run time: ~30 s.  Usage::

    python examples/npb_colocation.py [spark_workload] [npb_workload]
"""

import sys

import numpy as np

from repro import ExperimentConfig, ExperimentHarness, SimulationConfig


def timeline(harness: ExperimentHarness, pair: tuple[str, str], manager: str) -> None:
    """Print mean power/caps of both halves around a Spark phase rise."""
    result = harness.run_pair(*pair, manager, record_telemetry=True)
    _, sim_result = result
    tl = sim_result.telemetry
    assert tl is not None
    caps = tl.caps_w
    power = tl.power_w
    # Find the largest jump in the Spark half's demand-side power after
    # warm-up: the phase rise where starvation shows.
    spark_mean = power[:, :10].mean(axis=1)
    warm = 40
    jump = int(np.argmax(np.diff(spark_mean[warm:])) + warm)
    lo, hi = max(jump - 6, 0), min(jump + 18, len(tl.time_s))
    print(f"  {manager}: timeline around the Spark phase rise (t = step)")
    for i in range(lo, hi, 3):
        print(
            f"    t={tl.time_s[i]:6.0f}s  spark P={power[i, :10].mean():6.1f} "
            f"C={caps[i, :10].mean():6.1f} | npb P={power[i, 10:].mean():6.1f} "
            f"C={caps[i, 10:].mean():6.1f}"
        )


def main() -> None:
    spark = sys.argv[1] if len(sys.argv) > 1 else "bayes"
    npb = sys.argv[2] if len(sys.argv) > 2 else "cg"
    config = ExperimentConfig(
        sim=SimulationConfig(time_scale=0.5, max_steps=1_000_000),
        repeats=2,
        seed=11,
    )
    harness = ExperimentHarness(config)

    print(f"pair: {spark} (Spark) vs {npb} (NPB)\n")
    for manager in ("slurm", "dps"):
        ev = harness.evaluate_pair(spark, npb, manager)
        print(
            f"{manager:6s}: {spark} spd={ev.speedup_a:.3f}  "
            f"{npb} spd={ev.speedup_b:.3f}  hmean={ev.hmean_speedup:.3f}  "
            f"fairness={ev.fairness:.3f}"
        )
    print()
    for manager in ("slurm", "dps"):
        timeline(harness, (spark, npb), manager)
        print()


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Fairness analysis across contended pairs (paper §6.4 / Figure 7).

Evaluates DPS and SLURM on a sample of high-utility and Spark-NPB pairs,
prints per-pair satisfaction/fairness, and computes the correlation between
fairness and harmonic-mean performance that §6.4 reports.

Run time: ~60 s.  Usage::

    python examples/fairness_study.py
"""

import numpy as np

from repro import ExperimentConfig, ExperimentHarness, SimulationConfig
from repro.metrics import fairness_performance_correlation


PAIRS = [
    ("kmeans", "gmm"),
    ("lda", "gmm"),
    ("lr", "gmm"),
    ("rf", "gmm"),
    ("bayes", "cg"),
    ("kmeans", "ep"),
    ("linear", "is"),
]


def main() -> None:
    config = ExperimentConfig(
        sim=SimulationConfig(time_scale=0.5, max_steps=1_000_000),
        repeats=2,
        seed=23,
    )
    harness = ExperimentHarness(config)

    print(f"{'pair':22s} {'manager':7s} {'sat_a':>6s} {'sat_b':>6s} "
          f"{'fairness':>8s} {'hmean spd':>9s}")
    print("-" * 64)
    collected: dict[str, tuple[list[float], list[float]]] = {
        "slurm": ([], []),
        "dps": ([], []),
    }
    for a, b in PAIRS:
        for manager in ("slurm", "dps"):
            ev = harness.evaluate_pair(a, b, manager)
            print(
                f"{a + '/' + b:22s} {manager:7s} {ev.satisfaction_a:6.3f} "
                f"{ev.satisfaction_b:6.3f} {ev.fairness:8.3f} "
                f"{ev.hmean_speedup:9.3f}"
            )
            collected[manager][0].append(ev.fairness)
            collected[manager][1].append(ev.hmean_speedup)

    print()
    for manager, (fair, perf) in collected.items():
        corr = fairness_performance_correlation(
            np.asarray(fair), np.asarray(perf)
        )
        print(
            f"{manager}: mean fairness {np.mean(fair):.3f}, "
            f"corr(fairness, hmean performance) = {corr:+.2f}"
        )
    print(
        "\nExpected (paper §6.4): DPS mean fairness near 0.97 vs SLURM near "
        "0.75,\nand a positive fairness-performance correlation."
    )


if __name__ == "__main__":
    main()

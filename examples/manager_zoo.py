#!/usr/bin/env python3
"""Compare every registered power manager on one contended pair.

Runs the paper's comparison set (constant, SLURM, oracle, DPS) plus this
repo's extensions (Argo-style hierarchical, Penelope-style peer-to-peer,
and DPS+ with demand estimation) on kmeans vs GMM, and prints the grouped
result as a terminal bar chart.

Run time: ~40 s.  Usage::

    python examples/manager_zoo.py [workload_a] [workload_b]
"""

import sys

from repro import ExperimentConfig, ExperimentHarness, SimulationConfig
from repro.core.managers import available_managers
from repro.experiments.charts import bar_chart


def main() -> None:
    a = sys.argv[1] if len(sys.argv) > 1 else "kmeans"
    b = sys.argv[2] if len(sys.argv) > 2 else "gmm"
    config = ExperimentConfig(
        sim=SimulationConfig(time_scale=0.25, max_steps=2_000_000),
        repeats=2,
        seed=13,
    )
    harness = ExperimentHarness(config)

    rows = {}
    for manager in available_managers():
        ev = harness.evaluate_pair(a, b, manager)
        rows[manager] = ev
        print(
            f"{manager:12s} {a}={ev.speedup_a:.3f}  {b}={ev.speedup_b:.3f}  "
            f"hmean={ev.hmean_speedup:.3f}  fairness={ev.fairness:.3f}"
        )

    print(f"\npaired hmean speedup on {a}/{b} (axis = constant allocation):\n")
    print(
        bar_chart(
            {m: [ev.hmean_speedup] for m, ev in rows.items()},
            labels=[f"{a}/{b}"],
            width=44,
        )
    )
    print(
        "\nExpected ordering: stateless managers (slurm, hierarchical, "
        "p2p)\nat or below constant; dps and dps+ above it; oracle on top."
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Regenerate docs/workloads.md from the live workload programs.

Run after editing any program in ``repro/workloads/spark.py`` or
``npb.py`` so the catalog's sparklines and measured columns stay in sync::

    python docs/_generate_workloads.py
"""

from pathlib import Path

from repro.experiments.charts import sparkline
from repro.workloads import all_workloads

HEADER = """# Workload catalog

Demand programs of the 19 benchmark applications (uncapped, per active
socket), as calibrated against the paper's Tables 2 and 4 and Figure 2.
Sparklines show the full demand trace (min..max normalized); the measured
columns come from `PhaseProgram.fraction_above` and the program duration.
Regenerate with `python docs/_generate_workloads.py` after editing any
program in `repro/workloads/spark.py` or `npb.py`.

| workload | suite | class | uncapped dur (s) | paper dur @110W (s) | >110W % (measured / paper) | demand trace |
|---|---|---|---|---|---|---|"""

FOOTER = """
Notes:

- Low-power micro apps load a single socket (Table 3's one-executor
  configuration); mid/high/NPB apps load every socket of their half.
- Uncapped durations are deliberately shorter than the paper's capped
  (110 W) latencies; the constant-cap stretch reproduces Tables 2/4
  (verified by `benchmarks/bench_tables.py`).
- LR and Linear carry the sub-10 s burst structure of Figure 2c; scaling
  compresses their burst period down to a 4 s floor so the frequency
  detector's per-window peak count is preserved.
"""


def main() -> None:
    lines = [HEADER]
    for s in all_workloads().values():
        trace = s.program.sample(2.0)
        spark = sparkline(trace, width=48)
        above = s.program.fraction_above(110.0) * 100
        lines.append(
            f"| {s.name} | {s.suite} | {s.power_class} | "
            f"{s.program.duration_s:.0f} | {s.paper_duration_s:.0f} | "
            f"{above:.1f} / {s.paper_above_110_pct:.1f} | `{spark}` |"
        )
    lines.append(FOOTER)
    out = Path(__file__).parent / "workloads.md"
    out.write_text("\n".join(lines))
    print(f"wrote {out}")


if __name__ == "__main__":
    main()

"""Extension benches: DPS+ (demand estimation, §7) and the hierarchical
Argo-style baseline (§2.3).

Findings this bench records (see EXPERIMENTS.md):

* **Hierarchical** lands between SLURM and DPS — the group-proportional
  level-1 split recovers cross-group fairness that flat MIMD loses, but
  inside a group it inherits stateless starvation.
* **DPS+** closes most of the remaining gap to the oracle on the paired
  harmonic mean, at the cost of some of DPS's phased-workload lower-bound
  protection — demand-estimated water-filling optimizes throughput where
  DPS's equalization optimizes the guarantee.
"""

import numpy as np

from benchmarks._config import bench_harness


PAIRS = [("kmeans", "gmm"), ("bayes", "cg"), ("lr", "gmm"), ("rf", "ep")]
MANAGERS = ("slurm", "hierarchical", "dps", "dps+", "oracle")


def test_extension_managers(benchmark):
    harness = bench_harness()

    def run():
        out = {}
        for pair in PAIRS:
            for manager in MANAGERS:
                ev = harness.evaluate_pair(pair[0], pair[1], manager)
                out[(pair, manager)] = (ev.hmean_speedup, ev.fairness)
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    print()
    for pair in PAIRS:
        row = "  ".join(
            f"{m}={results[(pair, m)][0]:.3f}" for m in MANAGERS
        )
        print(f"  {pair[0]}/{pair[1]:7s} hmean: {row}")

    def mean_hm(manager):
        return float(np.mean([results[(p, manager)][0] for p in PAIRS]))

    # The ordering the extensions are built to demonstrate.
    assert mean_hm("slurm") < mean_hm("dps")
    assert mean_hm("hierarchical") < mean_hm("dps") + 0.005
    assert mean_hm("hierarchical") > mean_hm("slurm") - 0.01
    # DPS+ closes toward the oracle on the paired hmean.
    assert mean_hm("dps+") > mean_hm("dps") - 0.01
    assert mean_hm("oracle") >= mean_hm("dps+") - 0.01
    # Everyone respects the lower bound direction except the stateless two.
    for pair in PAIRS:
        assert results[(pair, "dps")][0] > 0.99

"""Campaign engine throughput: process-pool speedup and cache hit rate.

The paper's full evaluation is >1,000 machine-hours of simulations; the
reproduction's campaign engine fans the deduplicated job graph out over
worker processes and short-circuits repeats through the persistent result
cache.  This benchmark measures both levers on a smoke campaign
(``low_utility``, ``REPRO_BENCH_CAMPAIGN_PAIRS`` pairs, each group's paper
managers):

* wall-clock speedup of ``jobs=REPRO_BENCH_CAMPAIGN_JOBS`` over the
  sequential engine, with records asserted bit-identical;
* cache traffic of a cold run followed by a warm rerun against the same
  directory (the warm run must be 100 % hits and simulate nothing).

Results are printed (run with ``-s``) and written to a
``BENCH_campaign.json`` artifact (override via
``REPRO_BENCH_CAMPAIGN_ARTIFACT``) so CI accumulates the perf history.
The >= 3x speedup acceptance bar only applies on machines with at least
4 cores — a time-shared pool cannot beat the sequential engine.
"""

from __future__ import annotations

import json
import os
import time

from repro.core.config import ClusterSpec, SimulationConfig
from repro.experiments.campaign import Campaign
from repro.experiments.engine import ResultCache
from repro.experiments.harness import ExperimentConfig

#: Pairs per group; 8 pairs x 3 managers dedups to a 38-job graph in two
#: waves (6 references + 8 baselines, then 24 manager runs).
PAIRS = int(os.environ.get("REPRO_BENCH_CAMPAIGN_PAIRS", "8"))
JOBS = int(os.environ.get("REPRO_BENCH_CAMPAIGN_JOBS", "4"))
#: The smoke campaign runs the test-sized cluster, not the paper topology:
#: the benchmark measures the engine, not the simulations.  The scale is
#: picked so per-job work dominates pool startup by >10x at 4 workers.
TIME_SCALE = float(os.environ.get("REPRO_BENCH_CAMPAIGN_TIME_SCALE", "0.3"))
ARTIFACT = os.environ.get(
    "REPRO_BENCH_CAMPAIGN_ARTIFACT", "BENCH_campaign.json"
)


def _campaign() -> Campaign:
    config = ExperimentConfig(
        cluster=ClusterSpec(n_nodes=4, sockets_per_node=2),
        sim=SimulationConfig(
            time_scale=TIME_SCALE, max_steps=60_000, inter_run_gap_s=2.0
        ),
        repeats=1,
        seed=7,
    )
    return Campaign(config, groups=("low_utility",), limit_pairs=PAIRS)


def _update_artifact(section: str, doc: dict) -> None:
    merged = {}
    if os.path.exists(ARTIFACT):
        with open(ARTIFACT) as fh:
            merged = json.load(fh)
    merged.setdefault("format", "repro-bench-campaign-v1")
    merged[section] = doc
    with open(ARTIFACT, "w") as fh:
        json.dump(merged, fh, indent=2)
    print(f"updated {ARTIFACT}")


def test_campaign_parallel_speedup(benchmark):
    def measure():
        runs = {}
        for jobs in (1, JOBS):
            campaign = _campaign()
            t0 = time.perf_counter()
            result = campaign.run(jobs=jobs)
            runs[jobs] = (time.perf_counter() - t0, result)
        return runs

    runs = benchmark.pedantic(measure, rounds=1, iterations=1)
    seq_s, sequential = runs[1]
    par_s, parallel = runs[JOBS]
    speedup = seq_s / par_s
    eng = parallel.engine
    print(
        f"\ncampaign of {eng.n_jobs} jobs: sequential {seq_s:.1f}s, "
        f"jobs={JOBS} {par_s:.1f}s -> {speedup:.2f}x "
        f"on {os.cpu_count()} cores"
    )

    # The parallel path must be an optimization, never a different answer.
    assert parallel.records == sequential.records

    _update_artifact(
        "speedup",
        {
            "n_jobs_graph": eng.n_jobs,
            "pairs": PAIRS,
            "workers": JOBS,
            "cores": os.cpu_count(),
            "sequential_s": seq_s,
            "parallel_s": par_s,
            "speedup": speedup,
            "job_walls_s": {
                t.key: t.wall_s for t in eng.job_timings
            },
        },
    )

    if (os.cpu_count() or 1) >= 4 and JOBS >= 4:
        # The acceptance bar: a 38-job graph in two waves over 4 workers
        # has ~3.5x of ideal parallelism in it.
        assert speedup >= 3.0, f"speedup {speedup:.2f}x at jobs={JOBS}"


def test_campaign_cache_hit_rate(benchmark, tmp_path):
    def measure():
        runs = []
        for _ in range(2):
            campaign = _campaign()
            t0 = time.perf_counter()
            result = campaign.run(cache=ResultCache(tmp_path))
            runs.append((time.perf_counter() - t0, result))
        return runs

    (cold_s, cold), (warm_s, warm) = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )
    print(
        f"\ncold {cold_s:.1f}s ({cold.engine.cache_misses} misses), "
        f"warm {warm_s:.2f}s ({warm.engine.cache_hits} hits)"
    )

    assert cold.engine.cache_misses == cold.engine.n_jobs
    # The warm rerun is 100% hits: zero simulations, identical records.
    assert warm.engine.cache_hits == warm.engine.n_jobs
    assert warm.engine.cache_misses == 0
    assert warm.records == cold.records
    assert warm_s < cold_s / 10

    _update_artifact(
        "cache",
        {
            "n_jobs_graph": cold.engine.n_jobs,
            "cold_s": cold_s,
            "warm_s": warm_s,
            "warm_hit_rate": warm.engine.cache_hits / warm.engine.n_jobs,
        },
    )

"""Shared configuration for the benchmark suite.

Benchmarks reproduce the paper's tables and figures on the full 10-node /
20-socket testbed topology.  Workload durations are scaled down by
``REPRO_BENCH_TIME_SCALE`` (default 0.2) and repeats reduced to
``REPRO_BENCH_REPEATS`` (default 2) so the whole suite runs in minutes
instead of the paper's 1,000+ hours; set ``REPRO_BENCH_TIME_SCALE=1.0``
and ``REPRO_BENCH_REPEATS=10`` for a paper-scale run.

Every benchmark prints the reproduced rows/series (run pytest with ``-s``
to see them) and asserts the qualitative claims the paper makes about its
own numbers.

Set ``REPRO_BENCH_CACHE_DIR`` to back every harness with the persistent
result cache (:class:`repro.experiments.engine.ResultCache`): repeated
bench runs then skip simulations whose config digest already has a
verified on-disk result.
"""

from __future__ import annotations

import os

from repro.core.config import SimulationConfig
from repro.experiments.engine import ResultCache
from repro.experiments.harness import ExperimentConfig, ExperimentHarness

__all__ = [
    "bench_cache",
    "bench_config",
    "bench_harness",
    "TIME_SCALE",
    "REPEATS",
]

TIME_SCALE = float(os.environ.get("REPRO_BENCH_TIME_SCALE", "0.2"))
REPEATS = int(os.environ.get("REPRO_BENCH_REPEATS", "2"))
SEED = int(os.environ.get("REPRO_BENCH_SEED", "42"))
CACHE_DIR = os.environ.get("REPRO_BENCH_CACHE_DIR", "")


def bench_config() -> ExperimentConfig:
    """The benchmark campaign configuration (paper topology, scaled time)."""
    return ExperimentConfig(
        sim=SimulationConfig(time_scale=TIME_SCALE, max_steps=5_000_000),
        repeats=REPEATS,
        seed=SEED,
    )


_CACHE: ResultCache | None = None


def bench_cache() -> ResultCache | None:
    """The shared persistent cache, or None when no dir is configured."""
    global _CACHE
    if _CACHE is None and CACHE_DIR:
        _CACHE = ResultCache(CACHE_DIR)
    return _CACHE


_HARNESS: ExperimentHarness | None = None


def bench_harness() -> ExperimentHarness:
    """A module-spanning harness so baselines/references are shared."""
    global _HARNESS
    if _HARNESS is None:
        _HARNESS = ExperimentHarness(bench_config(), cache=bench_cache())
    return _HARNESS

"""Figure 5 — Spark high-utility group (demanding pairs with GMM).

Paper claims reproduced here: (a) DPS delivers constant-or-better for
every mid-power workload paired with GMM while SLURM penalizes the
long-phase ones; (b) on the paired harmonic mean DPS >= constant always,
and DPS beats SLURM overall.
"""

import numpy as np

from benchmarks._config import bench_harness
from repro.experiments.figures import figure5a, figure5b
from repro.experiments.reporting import render_bars


def test_figure5a(benchmark):
    harness = bench_harness()
    data = benchmark.pedantic(
        lambda: figure5a(harness, managers=("slurm", "dps")),
        rounds=1, iterations=1,
    )
    print("\n" + render_bars(data, "Figure 5(a) — mid-power vs GMM"))

    dps = dict(zip(data.labels, data.series["dps"]))
    slurm = dict(zip(data.labels, data.series["slurm"]))
    # DPS: constant-or-better for every workload (paper: 0 to +5.2 %).
    assert min(dps.values()) > 0.96
    # SLURM penalizes the long-phase workloads hardest (paper: kmeans,
    # lda, rf at -9 % to -14 %).
    long_phase = [slurm[w] for w in ("kmeans", "lda", "rf")]
    assert np.mean(long_phase) < 0.97
    # DPS beats SLURM on the long-phase workloads.
    for w in ("kmeans", "lda", "rf"):
        assert dps[w] > slurm[w]


def test_figure5b(benchmark):
    harness = bench_harness()
    data = benchmark.pedantic(
        lambda: figure5b(harness, managers=("slurm", "dps")),
        rounds=1, iterations=1,
    )
    print("\n" + render_bars(data, "Figure 5(b) — paired hmean with GMM"))

    dps = np.asarray(data.series["dps"])
    slurm = np.asarray(data.series["slurm"])
    # DPS ensures the lower bound on the paired hmean everywhere.
    assert dps.min() > 0.98
    # DPS beats SLURM in the aggregate (paper: +5.4 % mean).
    assert dps.mean() > slurm.mean()

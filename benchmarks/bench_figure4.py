"""Figure 4 — Spark low-utility group (28 pairs, DPS vs SLURM vs oracle).

Paper claims reproduced here: DPS and the oracle improve over constant
allocation by ~5-8 % on average; SLURM matches them except on the
high-frequency workloads (Linear, LR) where it falls to or below the
constant baseline.
"""

import numpy as np

from benchmarks._config import bench_harness
from repro.experiments.figures import figure4
from repro.experiments.reporting import render_bars
from repro.experiments.setups import low_utility_pairs


def test_figure4(benchmark):
    harness = bench_harness()
    data = benchmark.pedantic(
        lambda: figure4(
            harness,
            managers=("slurm", "dps", "oracle"),
            pairs=low_utility_pairs(),
        ),
        rounds=1, iterations=1,
    )
    print("\n" + render_bars(data, "Figure 4 — Spark low utility"))

    dps = dict(zip(data.labels, data.series["dps"]))
    slurm = dict(zip(data.labels, data.series["slurm"]))
    oracle = dict(zip(data.labels, data.series["oracle"]))

    # DPS and the oracle both clearly beat constant allocation on average.
    assert np.mean(list(dps.values())) > 1.02
    assert np.mean(list(oracle.values())) > 1.02
    # DPS stays close to the oracle (paper: both 5-8 %).
    assert abs(np.mean(list(dps.values())) - np.mean(list(oracle.values()))) < 0.05
    # DPS never falls below the constant baseline.
    assert min(dps.values()) > 0.98
    # The paper's LR story: SLURM lands below constant allocation on the
    # most bursty workload (LR, paper: -4.0 %) while DPS holds the lower
    # bound there; on Linear the paper's penalty is marginal, so only the
    # ordering is asserted.  (At compressed time scales SLURM also suffers
    # on other phased workloads — the same reaction-speed mechanism.)
    assert slurm["lr"] < 1.0
    for w in ("linear", "lr"):
        assert dps[w] > slurm[w]

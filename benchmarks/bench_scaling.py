"""Controller scaling — §6.5's "tens of thousands of nodes" claim.

Measures the bare decision-loop cost of the managers as the unit count
grows, in both decision cores:

* ``test_decision_core_speedup`` runs the loop oracle against the
  vectorized core at 20/200/2,000 units and asserts the array-native
  path is >= 20x faster per decision at 2,000 units (1,000 dual-socket
  nodes), where the per-unit Python walks start to dominate.
* ``test_large_cluster_decision_time`` pushes the vectorized core to
  20k and 100k units and asserts one full DPS decision stays under
  50 ms at 100k — well inside the 1 s decision loop with room for
  messaging (the loop core is not run at this scale; it needs seconds).
* ``test_history_memory_footprint`` checks the 20-step history stays
  cache-sized at any realistic scale.

The canonical workload is the *mixed* overprovisioned-cluster profile
(most units idle or steady, a bursty minority — the population the paper
overprovisions against); the i.i.d.-uniform stress profile, with every
unit maximally chaotic every step, is also recorded at 100k units for
reference but not gated (it has no realistic counterpart at that scale);
its per-run values accumulate in the ``uniform_stress_series`` section so
drift is visible PR-over-PR.

Results are written to a ``BENCH_scaling.json`` artifact (override via
``REPRO_BENCH_SCALING_ARTIFACT``) so CI accumulates the scaling history.
"""

import json
import os

from repro.experiments.tables import measure_decision_time

ARTIFACT = os.environ.get("REPRO_BENCH_SCALING_ARTIFACT", "BENCH_scaling.json")
#: Timed decision steps per (manager, size) cell; override to trade noise
#: robustness against bench wall time.
STEPS = int(os.environ.get("REPRO_BENCH_SCALING_STEPS", "30"))
#: Untimed steps first, so medians measure the steady state (history full,
#: priority flags settled) and not the cheaper warm-up transient.
WARMUP = int(os.environ.get("REPRO_BENCH_SCALING_WARMUP", "25"))

CORE_COMPARE_UNITS = (20, 200, 2000)
LARGE_UNITS = (20_000, 100_000)


def _update_artifact(section: str, doc: dict) -> None:
    merged = {}
    if os.path.exists(ARTIFACT):
        with open(ARTIFACT) as fh:
            merged = json.load(fh)
    merged.setdefault("format", "repro-bench-scaling-v1")
    merged[section] = doc
    with open(ARTIFACT, "w") as fh:
        json.dump(merged, fh, indent=2)
    print(f"updated {ARTIFACT}")


def _append_series(section: str, entry: dict, keep: int = 50) -> None:
    """Append one run's measurement to a rolling series in the artifact.

    Unlike :func:`_update_artifact` (which overwrites a section), a
    series accumulates one entry per bench run, so drift on ungated
    measurements stays visible PR-over-PR in the committed artifact.
    """
    merged = {}
    if os.path.exists(ARTIFACT):
        with open(ARTIFACT) as fh:
            merged = json.load(fh)
    merged.setdefault("format", "repro-bench-scaling-v1")
    series = list(merged.get(section, []))
    series.append(entry)
    merged[section] = series[-keep:]
    with open(ARTIFACT, "w") as fh:
        json.dump(merged, fh, indent=2)
    print(f"appended to {ARTIFACT}:{section} ({len(series)} entries)")


def test_decision_core_speedup(benchmark):
    def run():
        out = {}
        for n in CORE_COMPARE_UNITS:
            row = {}
            for name in ("slurm", "dps"):
                for core in ("loop", "vectorized"):
                    row[f"{name}_{core}"] = measure_decision_time(
                        name,
                        n_units=n,
                        steps=STEPS,
                        decision_core=core,
                        workload="mixed",
                        warmup=WARMUP,
                    )
            out[n] = row
        return out

    times = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nper-decision wall time by cluster size and decision core:")
    for n, row in times.items():
        print(
            f"  {n:5d} units: "
            + ", ".join(f"{k}={v * 1e3:.3f}ms" for k, v in row.items())
        )
    speedups = {
        n: row["dps_loop"] / row["dps_vectorized"] for n, row in times.items()
    }
    print(
        "dps speedup (loop/vectorized): "
        + ", ".join(f"{n}={s:.1f}x" for n, s in speedups.items())
    )
    _update_artifact(
        "decision_core_speedup",
        {
            "workload": "mixed",
            "steps": STEPS,
            "warmup": WARMUP,
            "per_decision_s": {str(n): row for n, row in times.items()},
            "dps_speedup": {str(n): s for n, s in speedups.items()},
        },
    )

    # The tentpole target: the array-native core wins >= 20x where the
    # loop core's per-unit Python walks dominate.
    assert speedups[2000] >= 20.0, (
        f"vectorized core only {speedups[2000]:.1f}x faster at 2000 units"
    )
    # And the loop core itself stays usable at small scale (the oracle
    # runs in every equivalence test).
    assert times[20]["dps_loop"] < 0.05


def test_large_cluster_decision_time(benchmark):
    def run():
        out = {
            str(n): measure_decision_time(
                "dps",
                n_units=n,
                steps=STEPS,
                decision_core="vectorized",
                workload="mixed",
                warmup=WARMUP,
            )
            for n in LARGE_UNITS
        }
        # Stress reference: every unit i.i.d.-chaotic every second.  Not
        # gated — no overprovisioned cluster looks like this — but kept in
        # the artifact so regressions on pathological inputs stay visible.
        out["100000_uniform_stress"] = measure_decision_time(
            "dps",
            n_units=100_000,
            steps=max(STEPS // 2, 10),
            decision_core="vectorized",
            workload="uniform",
            warmup=WARMUP,
        )
        return out

    times = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nvectorized DPS per-decision wall time at scale:")
    for key, v in times.items():
        print(f"  {key}: {v * 1e3:.2f}ms")
    _update_artifact(
        "large_cluster",
        {
            "workload": "mixed",
            "steps": STEPS,
            "warmup": WARMUP,
            "per_decision_s": times,
        },
    )
    # The stress row stays ungated (no realistic counterpart at 100k
    # units), but it is tracked as a rolling series — one entry per bench
    # run — so a pathological-input regression shows up as drift in the
    # committed artifact instead of hiding behind the overwritten row.
    _append_series(
        "uniform_stress_series",
        {
            "n_units": 100_000,
            "steps": max(STEPS // 2, 10),
            "per_decision_s": times["100000_uniform_stress"],
        },
    )

    # One decision across a 100k-unit cluster fits in 50 ms — 5% of the
    # 1 s decision loop, leaving the budget to messaging and actuation.
    assert times["100000"] < 0.05, (
        f"100k-unit decision took {times['100000'] * 1e3:.1f}ms"
    )
    # Growth 20k -> 100k stays at most ~linear.
    ratio = times["100000"] / times["20000"]
    assert ratio < 15, f"superlinear controller scaling: {ratio:.1f}x for 5x units"


def test_history_memory_footprint(benchmark):
    """§6.5: '20 time steps ... can easily fit in the last-level cache
    even scaled to tens of thousands of nodes, taking up several
    megabytes'."""

    def footprint(n_units: int) -> int:
        # float64 history of 20 steps per unit.
        return 20 * n_units * 8

    result = benchmark.pedantic(
        lambda: {n: footprint(n) for n in (20, 20_000, 200_000)},
        rounds=1, iterations=1,
    )
    print(
        "\nhistory footprint: "
        + ", ".join(f"{n} units = {b / 1e6:.2f} MB" for n, b in result.items())
    )
    assert result[20_000] < 20e6  # "several megabytes" at 10k nodes.

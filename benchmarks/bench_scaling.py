"""Controller scaling — §6.5's "tens of thousands of nodes" claim.

Measures the bare decision-loop cost of each manager as the unit count
grows and checks the paper's scaling arguments: per-decision time grows
(sub-)linearly in units, stays far under the 1 s decision loop at 2,000
units (1,000 dual-socket nodes), and DPS's state (the 20-step history)
stays cache-resident at any realistic scale.
"""

import numpy as np

from repro.experiments.tables import measure_decision_time


def test_controller_scaling(benchmark):
    unit_counts = (20, 200, 2000)

    def run():
        out = {}
        for n in unit_counts:
            out[n] = {
                name: measure_decision_time(name, n_units=n, steps=30)
                for name in ("slurm", "dps")
            }
        return out

    times = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nper-decision wall time by cluster size:")
    for n, row in times.items():
        print(
            f"  {n:5d} units: "
            + ", ".join(f"{k}={v * 1e3:.2f}ms" for k, v in row.items())
        )

    # Far below the 1 s decision loop at 1,000 dual-socket nodes.
    assert times[2000]["dps"] < 0.25
    # Growth is at most ~linear-with-overhead: 100x units costs well under
    # 300x time for DPS.
    ratio = times[2000]["dps"] / times[20]["dps"]
    assert ratio < 300, f"superlinear controller scaling: {ratio:.0f}x"


def test_history_memory_footprint(benchmark):
    """§6.5: '20 time steps ... can easily fit in the last-level cache
    even scaled to tens of thousands of nodes, taking up several
    megabytes'."""

    def footprint(n_units: int) -> int:
        # float64 history of 20 steps per unit.
        return 20 * n_units * 8

    result = benchmark.pedantic(
        lambda: {n: footprint(n) for n in (20, 20_000, 200_000)},
        rounds=1, iterations=1,
    )
    print(
        "\nhistory footprint: "
        + ", ".join(f"{n} units = {b / 1e6:.2f} MB" for n, b in result.items())
    )
    assert result[20_000] < 20e6  # "several megabytes" at 10k nodes.

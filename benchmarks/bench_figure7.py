"""Figure 7 / §6.4 — fairness analysis.

Paper claims reproduced here: DPS's mean fairness far exceeds SLURM's in
the contended groups (paper: 0.97 vs 0.75 high-utility, 0.96 vs 0.71
Spark-NPB), DPS's fairness is at least SLURM's pair-by-pair in aggregate,
and fairness correlates positively with harmonic-mean performance.
"""

import numpy as np

from benchmarks._config import bench_harness
from repro.experiments.figures import figure7
from repro.experiments.reporting import render_figure7
from repro.experiments.setups import demanding_spark_names


def test_figure7(benchmark):
    harness = bench_harness()
    pairs = [(w, "gmm") for w in demanding_spark_names()] + [
        (w, n)
        for w in ("kmeans", "lda", "lr", "bayes")
        for n in ("cg", "ep", "is")
    ]
    data = benchmark.pedantic(
        lambda: figure7(harness, managers=("slurm", "dps"), pairs=pairs),
        rounds=1, iterations=1,
    )
    print("\n" + render_figure7(data))

    assert data.mean_fairness["dps"] > 0.9
    assert data.mean_fairness["dps"] > data.mean_fairness["slurm"] + 0.08
    # Pooling both managers' pairs, fairness correlates positively with
    # harmonic-mean performance (the §6.4 observation).
    pooled_fair = np.concatenate(
        [data.fairness["slurm"], data.fairness["dps"]]
    )
    pooled_perf = np.concatenate(
        [data.hmean_speedups["slurm"], data.hmean_speedups["dps"]]
    )
    corr = np.corrcoef(pooled_fair, pooled_perf)[0, 1]
    assert corr > 0.3

"""§6.5 — control-cycle latency scaling: sequential vs concurrent fan-out.

The paper's overhead claim rests on the decision loop staying cheap
"regardless of cluster size".  A sequential request/response cycle is
O(n_clients) round-trips — and one slow (not yet dead) client stalls
every other node for up to ``timeout_s``.  The concurrent fan-out/fan-in
cycle makes wall time max-of-clients instead of sum-of-clients.

This benchmark drives real TCP loopback clients through both poll modes,
with and without one straggler delayed to 0.8 x the cycle deadline, at
each cluster size in ``REPRO_BENCH_CYCLE_CLIENTS`` (default "4,32").
Every healthy daemon pays ``METER_DELAY_S`` per poll — the node-side
metering latency a real RAPL read costs — which is exactly the per-client
cost a sequential chain serializes and the concurrent cycle overlaps.

Results are printed (run with ``-s``) and written to a
``BENCH_cycle_latency.json`` trajectory artifact (override the path via
``REPRO_BENCH_CYCLE_ARTIFACT``) so CI accumulates the perf history.
"""

from __future__ import annotations

import json
import os
import time

import numpy as np

from repro.cluster.cluster import Cluster
from repro.core.config import ClusterSpec, RaplConfig
from repro.core.managers import create_manager
from repro.deploy.client import DeployClient
from repro.deploy.server import DeployServer
from repro.safety import SafetyConfig
from repro.telemetry.export import timings_to_json

N_CLIENTS = tuple(
    int(x)
    for x in os.environ.get("REPRO_BENCH_CYCLE_CLIENTS", "4,32").split(",")
)
#: The per-cycle collection deadline; the straggler answers at 80% of it.
TIMEOUT_S = float(os.environ.get("REPRO_BENCH_CYCLE_TIMEOUT_S", "0.25"))
#: Node-side metering latency every healthy daemon pays per poll.
METER_DELAY_S = 0.02
#: Measured cycles per configuration (after one warm-up cycle).
CYCLES = int(os.environ.get("REPRO_BENCH_CYCLE_CYCLES", "3"))
ARTIFACT = os.environ.get(
    "REPRO_BENCH_CYCLE_ARTIFACT", "BENCH_cycle_latency.json"
)


def _measure_cycle(
    n_clients: int,
    poll_mode: str,
    straggler: bool,
    manager_name: str = "slurm",
    safety: SafetyConfig | None = None,
) -> dict:
    """Median control-cycle wall time of one loopback configuration."""
    spec = ClusterSpec(n_nodes=n_clients, sockets_per_node=1)
    cluster = Cluster(
        spec, RaplConfig(noise_std_w=0.0), np.random.default_rng(7)
    )
    manager = create_manager(manager_name)
    manager.bind(
        n_units=cluster.n_units,
        budget_w=cluster.budget_w,
        max_cap_w=spec.tdp_w,
        min_cap_w=spec.min_cap_w,
        rng=np.random.default_rng(7),
    )
    straggler_delay = 0.8 * TIMEOUT_S
    clients: list[DeployClient] = []
    with DeployServer(
        manager, timeout_s=TIMEOUT_S, poll_mode=poll_mode, safety=safety
    ) as server:
        for i, node in enumerate(cluster.nodes):
            delay = (
                straggler_delay
                if straggler and i == n_clients // 2
                else METER_DELAY_S
            )
            client = DeployClient(node, server.address, poll_delay_s=delay)
            client.start()
            clients.append(client)
        server.accept_clients(n_clients)

        server.control_cycle()  # Warm-up: thread scheduling, buffers.
        wall: list[float] = []
        for _ in range(CYCLES):
            t0 = time.perf_counter()
            stats = server.control_cycle()
            wall.append(time.perf_counter() - t0)
        assert stats.n_healthy == n_clients, (
            f"straggler must beat the deadline, census: {stats.n_healthy}"
        )
        phase_doc = json.loads(timings_to_json(server.timings))
        server.shutdown()
        for client in clients:
            try:
                client.join()
            except RuntimeError:
                pass  # A daemon of a closing session may exit on EOF.
    return {
        "n_clients": n_clients,
        "poll_mode": poll_mode,
        "straggler": straggler,
        "cycle_s": float(np.median(wall)),
        "cycle_s_all": [float(w) for w in wall],
        "phases": phase_doc,
    }


def test_cycle_latency_scaling(benchmark):
    results = benchmark.pedantic(
        lambda: [
            _measure_cycle(n, mode, straggler)
            for n in N_CLIENTS
            for mode in ("sequential", "concurrent")
            for straggler in (False, True)
        ],
        rounds=1, iterations=1,
    )

    by_key = {
        (r["n_clients"], r["poll_mode"], r["straggler"]): r["cycle_s"]
        for r in results
    }
    print("\ncycle wall time (median of %d):" % CYCLES)
    speedups = {}
    for n in N_CLIENTS:
        for straggler in (False, True):
            seq = by_key[(n, "sequential", straggler)]
            con = by_key[(n, "concurrent", straggler)]
            speedups[(n, straggler)] = seq / con
            label = "straggler" if straggler else "uniform  "
            print(
                f"  n={n:3d} {label}: sequential {seq * 1e3:7.1f} ms, "
                f"concurrent {con * 1e3:7.1f} ms, {seq / con:4.1f}x"
            )

    doc = {
        "format": "repro-bench-cycle-latency-v1",
        "timeout_s": TIMEOUT_S,
        "meter_delay_s": METER_DELAY_S,
        "cycles": CYCLES,
        "results": results,
        "speedup": {
            f"n{n}_{'straggler' if s else 'uniform'}": ratio
            for (n, s), ratio in speedups.items()
        },
    }
    with open(ARTIFACT, "w") as fh:
        json.dump(doc, fh, indent=2)
    print(f"wrote {ARTIFACT}")

    n_max = max(N_CLIENTS)
    # Sequential pays every client's metering latency; concurrent pays
    # only the slowest client's.  Both still wait for the straggler (it
    # answers inside the deadline), so the win is the serialized tail.
    assert speedups[(n_max, False)] > 2.0, (
        f"uniform speedup at n={n_max}: {speedups[(n_max, False)]:.2f}"
    )
    if n_max >= 32:
        # The acceptance bar: 32 clients, one straggler at 0.8 x the
        # deadline, concurrent >= 3x faster than the sequential chain.
        assert speedups[(n_max, True)] >= 3.0, (
            f"straggler speedup at n={n_max}: {speedups[(n_max, True)]:.2f}"
        )


def test_invariant_monitor_overhead(benchmark):
    """Per-cycle cost of the budget-safety envelope's invariant monitors
    in each mode: ``off`` (baseline), ``sampling`` (every 16th cycle in
    deployment), ``strict`` (every cycle, the chaos/test posture).  The
    numbers join the ``BENCH_cycle_latency.json`` artifact under
    ``invariant_overhead`` without clobbering the scaling results."""
    modes = ("off", "sampling", "strict")
    results = benchmark.pedantic(
        lambda: {
            mode: _measure_cycle(
                8,
                "concurrent",
                False,
                manager_name="dps",
                safety=SafetyConfig(guard=True, invariant_mode=mode),
            )
            for mode in modes
        },
        rounds=1, iterations=1,
    )

    base = results["off"]["cycle_s"]
    print("\ninvariant monitor overhead (n=8, concurrent, median cycle):")
    overhead = {}
    for mode in modes:
        cycle = results[mode]["cycle_s"]
        overhead[mode] = {
            "cycle_s": cycle,
            "cycle_s_all": results[mode]["cycle_s_all"],
            "overhead_s": cycle - base,
        }
        print(
            f"  {mode:8s}: {cycle * 1e3:7.2f} ms/cycle "
            f"(+{(cycle - base) * 1e3:6.2f} ms vs off)"
        )

    doc = {}
    if os.path.exists(ARTIFACT):
        with open(ARTIFACT) as fh:
            doc = json.load(fh)
    doc.setdefault("format", "repro-bench-cycle-latency-v1")
    doc["invariant_overhead"] = {
        "n_clients": 8,
        "poll_mode": "concurrent",
        "manager": "dps",
        "modes": overhead,
    }
    with open(ARTIFACT, "w") as fh:
        json.dump(doc, fh, indent=2)
    print(f"updated {ARTIFACT}")

    # The monitors must never come close to costing a control cycle:
    # even strict mode stays well inside the collection deadline.
    assert overhead["strict"]["overhead_s"] < TIMEOUT_S, (
        f"strict sweep costs {overhead['strict']['overhead_s']:.3f}s/cycle"
    )


def test_straggler_does_not_stall_concurrent_cycle(benchmark):
    """The concurrent cycle's wall time is the straggler's delay, not the
    sum of everyone's — and the phase timer attributes it to collect."""
    result = benchmark.pedantic(
        lambda: _measure_cycle(8, "concurrent", True), rounds=1, iterations=1
    )
    straggler_delay = 0.8 * TIMEOUT_S
    assert result["cycle_s"] < straggler_delay + 7 * METER_DELAY_S
    collect = result["phases"]["collect_s"]
    # The collect phase dominated: it absorbed the straggler's wait.
    assert max(collect) > 0.5 * straggler_delay

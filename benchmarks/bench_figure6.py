"""Figure 6 — Spark x NPB group (56 pairs, grouped both ways).

Paper claims reproduced here: DPS outperforms SLURM on every pair grouping
(paper: +1.7 % to +21.3 %, mean +8 %); SLURM's paired harmonic mean falls
below constant for most Spark groupings (it boosts the NPB side by
starving the Spark side); DPS improves every grouping.
"""

import numpy as np

from benchmarks._config import bench_harness
from repro.experiments.figures import figure6
from repro.experiments.reporting import render_bars
from repro.experiments.setups import spark_npb_pairs


def test_figure6(benchmark):
    harness = bench_harness()
    by_spark, by_npb = benchmark.pedantic(
        lambda: figure6(
            harness, managers=("slurm", "dps"), pairs=spark_npb_pairs()
        ),
        rounds=1, iterations=1,
    )
    print("\n" + render_bars(by_spark, "Figure 6(a) — by Spark workload"))
    print("\n" + render_bars(by_npb, "Figure 6(b) — by NPB workload"))

    dps_spark = np.asarray(by_spark.series["dps"])
    slurm_spark = np.asarray(by_spark.series["slurm"])
    dps_npb = np.asarray(by_npb.series["dps"])
    slurm_npb = np.asarray(by_npb.series["slurm"])

    # DPS improves every grouping (paper: "DPS improves the performance of
    # all the workloads").
    assert dps_spark.min() > 1.0
    assert dps_npb.min() > 1.0
    # DPS beats SLURM on every grouping.
    assert np.all(dps_spark > slurm_spark)
    assert np.all(dps_npb > slurm_npb)
    # SLURM sits below constant for most Spark groupings.
    assert np.mean(slurm_spark < 1.0) >= 0.5
    # Aggregate margin in the paper's direction (mean +8 %, here > +3 %).
    mean_gain = np.mean(dps_spark - slurm_spark)
    assert mean_gain > 0.03

"""Ablation benches for the design choices called out in DESIGN.md §5.

Each ablation flips one DPS design decision and measures the consequence
on the scenario that motivates it:

1. Kalman filter under measurement noise (robustness to noisy RAPL).
2. Frequency detection on the high-frequency workload (LR).
3. Performance-model concavity (theta) — a harsher power/performance
   curve grows every manager's stakes but must not flip the DPS > SLURM
   ordering.
4. History length (deployment-window sensitivity).
"""

import dataclasses

from benchmarks._config import bench_cache, bench_config
from repro.core.config import (
    DPSConfig,
    KalmanConfig,
    PerfModelConfig,
    PriorityConfig,
    RaplConfig,
)
from repro.experiments.harness import ExperimentHarness


def _harness(**overrides):
    cfg = dataclasses.replace(bench_config(), **overrides)
    # Each override changes the config digest, so the shared persistent
    # cache keys every ablation's runs separately.
    return ExperimentHarness(cfg, cache=bench_cache())


def test_ablation_kalman_under_noise(benchmark):
    """Without the KF, heavy measurement noise degrades DPS (or at best
    matches); with it, performance holds (paper §4.3.2's motivation)."""

    def run():
        noisy = RaplConfig(noise_std_w=6.0)
        with_kf = _harness(rapl=noisy, dps=DPSConfig(use_kalman=True))
        without_kf = _harness(rapl=noisy, dps=DPSConfig(use_kalman=False))
        return (
            with_kf.evaluate_pair("kmeans", "gmm", "dps").hmean_speedup,
            without_kf.evaluate_pair("kmeans", "gmm", "dps").hmean_speedup,
        )

    with_kf, without_kf = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nnoise 6 W: hmean with KF {with_kf:.3f}, without {without_kf:.3f}")
    assert with_kf > 0.99  # The KF keeps DPS at/above constant.
    assert with_kf > without_kf - 0.03  # Never meaningfully worse.


def test_ablation_frequency_detection(benchmark):
    """Frequency pinning on the high-frequency LR (DESIGN.md ablation 2).

    Reproduction finding (see EXPERIMENTS.md): in this substrate the
    sensitive derivative classifier plus the restore/equalize passes
    already protect LR, so disabling frequency detection costs little on
    end performance — its isolated effect is belt-and-suspenders.  The
    load-bearing comparison is DPS (either setting) against SLURM, which
    clearly loses on the same pair; we assert that, plus no-harm from the
    frequency path.
    """

    def run():
        full = _harness(dps=DPSConfig(use_frequency=True))
        ablated = _harness(dps=DPSConfig(use_frequency=False))
        return (
            full.evaluate_pair("lr", "gmm", "dps").speedup_a,
            ablated.evaluate_pair("lr", "gmm", "dps").speedup_a,
            full.evaluate_pair("lr", "gmm", "slurm").speedup_a,
        )

    full, ablated, slurm = benchmark.pedantic(run, rounds=1, iterations=1)
    print(
        f"\nlr speedup: frequency on {full:.3f}, off {ablated:.3f}, "
        f"slurm {slurm:.3f}"
    )
    assert full > 0.96          # Lower bound held with the full pipeline.
    assert full >= ablated - 0.02   # Frequency detection never hurts.
    assert slurm < full - 0.02      # And DPS clearly beats SLURM here.


def test_ablation_perf_model_theta(benchmark):
    """The who-wins ordering is robust to the power/performance curve."""

    def run():
        out = {}
        for theta in (1.0, 2.0, 3.0):
            h = _harness(perf=PerfModelConfig(theta=theta))
            dps = h.evaluate_pair("kmeans", "gmm", "dps").hmean_speedup
            slurm = h.evaluate_pair("kmeans", "gmm", "slurm").hmean_speedup
            out[theta] = (dps, slurm)
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    for theta, (dps, slurm) in results.items():
        print(f"  theta={theta}: dps {dps:.3f}, slurm {slurm:.3f}")
        assert dps > slurm - 0.005, f"ordering flipped at theta={theta}"


def test_ablation_npb_barrier_sync(benchmark):
    """Sensitivity: strict MPI-barrier synchronization for NPB.

    With ``sync="min"`` every socket-level cap or jitter difference gates
    the whole NPB job, taxing *all* dynamic managers.  DPS must still beat
    SLURM under the stricter model, though its absolute gain narrows
    (recorded in EXPERIMENTS.md; the default model is "mean", which
    matches the tolerance the paper's measured NPB numbers imply).
    """
    import dataclasses as dc

    from repro.workloads.npb import npb_workload
    from repro.workloads.registry import get_workload
    from repro.cluster.cluster import Cluster
    from repro.cluster.simulator import Assignment, Simulation
    from repro.metrics.speedup import hmean, paired_hmean_speedup

    cfg = bench_config()

    def run_pair_with_sync(sync: str, manager_name: str):
        spark = get_workload("bayes")
        npb = dc.replace(npb_workload("cg"), sync=sync)
        cluster = Cluster(cfg.cluster)
        sim = Simulation(
            cluster_spec=cfg.cluster,
            manager=cfg.make_manager(manager_name),
            assignments=[
                Assignment(spec=spark, unit_ids=cluster.half_unit_ids(0)),
                Assignment(spec=npb, unit_ids=cluster.half_unit_ids(1)),
            ],
            target_runs=cfg.repeats,
            sim_config=cfg.sim,
            perf_config=cfg.perf,
            rapl_config=cfg.rapl,
            seed=cfg.derive_seed("sync-ablation", sync, manager_name),
        )
        result = sim.run()
        assert not result.truncated
        return (
            [r.duration_s for r in result.execution("bayes").records],
            [r.duration_s for r in result.execution("cg").records],
        )

    def run():
        out = {}
        for sync in ("mean", "min"):
            base_a, base_b = run_pair_with_sync(sync, "constant")
            out[sync] = {}
            for manager in ("slurm", "dps"):
                a, b = run_pair_with_sync(sync, manager)
                out[sync][manager] = paired_hmean_speedup(
                    hmean(base_a) / hmean(a), hmean(base_b) / hmean(b)
                )
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    for sync, row in results.items():
        print(
            f"  bayes/cg sync={sync}: "
            + ", ".join(f"{m}={v:.3f}" for m, v in row.items())
        )
    for sync in ("mean", "min"):
        assert results[sync]["dps"] > results[sync]["slurm"]


def test_ablation_derivative_estimator(benchmark):
    """Endpoint difference (the paper's Algorithm 2 line 16) vs a
    least-squares slope over the window.  With the Kalman filter in front,
    the two classify nearly identically end to end — the paper's simpler
    estimator is justified."""

    def run():
        out = {}
        for method in ("endpoints", "lsq"):
            h = _harness(
                dps=DPSConfig(priority=PriorityConfig(deriv_method=method))
            )
            out[method] = h.evaluate_pair(
                "kmeans", "gmm", "dps"
            ).hmean_speedup
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print(
        "\nderivative estimator -> hmean: "
        + ", ".join(f"{k}={v:.3f}" for k, v in results.items())
    )
    assert abs(results["endpoints"] - results["lsq"]) < 0.02
    for v in results.values():
        assert v > 0.99


def test_ablation_history_length(benchmark):
    """A longer history delays classification slightly but the paper's
    20-step default and a 10-step variant land in the same place."""

    def run():
        out = {}
        for hlen in (10, 20, 40):
            dps_cfg = DPSConfig(priority=PriorityConfig(history_len=hlen))
            h = _harness(dps=dps_cfg)
            out[hlen] = h.evaluate_pair("bayes", "cg", "dps").hmean_speedup
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print(
        "\nhistory length -> hmean: "
        + ", ".join(f"{k}: {v:.3f}" for k, v in results.items())
    )
    for hlen, hm in results.items():
        assert hm > 0.98, f"history_len={hlen} broke the lower bound"

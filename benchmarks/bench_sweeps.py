"""Budget sweep — the evaluation the paper could not afford (§6 preamble).

"Experiments with multiple power limits lower than the TDP can provide a
more comprehensive evaluation of DPS" — but each limit cost the authors
1,000+ machine-hours, so the paper reports only the 66.7 % budget.  The
simulator runs the sweep in seconds and confirms the paper's design claim
at every point: DPS holds the constant-allocation lower bound across
budgets, while the stateless manager's loss *grows* with the budget (with
ample budget the constant baseline is near-optimal, so SLURM's cap-chasing
is pure downside; with a tight budget there is nothing to misallocate).
"""

import numpy as np

from benchmarks._config import bench_cache, bench_config
from repro.experiments.sweeps import budget_sweep, noise_sweep


def test_budget_sweep(benchmark):
    fractions = (0.5, 0.6, 2 / 3, 0.8, 0.9)
    points = benchmark.pedantic(
        lambda: budget_sweep(
            bench_config(),
            pair=("kmeans", "gmm"),
            budget_fractions=fractions,
            managers=("slurm", "dps", "p2p"),
            cache=bench_cache(),
        ),
        rounds=1, iterations=1,
    )
    by_key = {(p.parameter, p.manager): p for p in points}
    print("\nbudget fraction sweep (kmeans/gmm, hmean vs constant):")
    for f in fractions:
        row = "  ".join(
            f"{m}={by_key[(f, m)].hmean_speedup:.3f}"
            for m in ("slurm", "dps", "p2p")
        )
        print(f"  {f:.2f}: {row}")

    dps = np.asarray([by_key[(f, "dps")].hmean_speedup for f in fractions])
    slurm = np.asarray(
        [by_key[(f, "slurm")].hmean_speedup for f in fractions]
    )
    # DPS holds the lower bound at every budget.
    assert dps.min() > 0.98
    # DPS beats or matches SLURM at every budget.
    assert np.all(dps >= slurm - 0.005)
    # SLURM's loss grows toward ample budgets (endpoints ordering).
    assert slurm[-1] < slurm[0]


def test_noise_sweep(benchmark):
    noise_levels = (0.0, 1.5, 4.0, 8.0)
    points = benchmark.pedantic(
        lambda: noise_sweep(
            bench_config(),
            pair=("kmeans", "gmm"),
            noise_stds_w=noise_levels,
            managers=("dps",),
            cache=bench_cache(),
        ),
        rounds=1, iterations=1,
    )
    print("\nnoise sweep (kmeans/gmm, DPS hmean vs constant):")
    for p in points:
        print(f"  sigma={p.parameter:4.1f} W: hmean={p.hmean_speedup:.3f} "
              f"fairness={p.fairness:.3f}")
    # The Kalman-filtered pipeline keeps the lower bound through heavy
    # measurement noise (§4.3.2's purpose).
    for p in points:
        assert p.hmean_speedup > 0.98

"""Benchmark-session configuration banner."""

from benchmarks._config import REPEATS, SEED, TIME_SCALE


def pytest_report_header(config):
    """Show the bench campaign configuration at the top of every run."""
    del config
    return (
        "repro benchmarks: paper topology (10 nodes / 20 sockets, 2200 W), "
        f"REPRO_BENCH_TIME_SCALE={TIME_SCALE}, "
        f"REPRO_BENCH_REPEATS={REPEATS}, seed={SEED} "
        "(1.0/10 = paper scale)"
    )

"""Figure 2 — uncapped power phases of LDA, Bayes, and LR.

Measures the three applications' solo uncapped traces through the full
substrate (RAPL physics + telemetry) and asserts the phase structure the
paper highlights: LDA's long phases, Bayes's mixed lengths and peak
diversity, LR's sub-10 s bursts.
"""

import numpy as np

from benchmarks._config import bench_config
from repro.experiments.figures import figure2
from repro.telemetry.analysis import extract_phases


def test_figure2(benchmark):
    traces = benchmark.pedantic(
        lambda: figure2(config=bench_config()),
        rounds=1, iterations=1,
    )
    print()
    stats = {}
    for name, (t, p) in traces.items():
        phases = extract_phases(t, p, min_delta_w=25.0, min_duration_s=2.0)
        mean_phase = float(np.mean([ph.duration_s for ph in phases]))
        above = 100 * float(np.mean(p > 110.0))
        stats[name] = (mean_phase, above, float(p.max()))
        print(
            f"  {name:6s}: {len(phases):3d} phases, mean "
            f"{mean_phase:6.1f}s, {above:5.1f}% above 110 W, "
            f"peak {p.max():5.1f} W"
        )

    # LDA's phases are much longer than LR's (Figures 2a vs 2c).
    assert stats["lda"][0] > 3 * stats["lr"][0]
    # All three reach well above 110 W uncapped.  LR's bound is looser:
    # at compressed time scales its bursts last a single control step and
    # the RAPL first-order lag shaves the top off the measured peak.
    for name in ("lda", "bayes"):
        assert stats[name][2] > 125.0
    assert stats["lr"][2] > 118.0
    # LR's above-110 fraction is the smallest of the three (Table 2).
    assert stats["lr"][1] < stats["bayes"][1] < stats["lda"][1]

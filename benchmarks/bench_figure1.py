"""Figure 1 — the motivational two-node example.

Regenerates the cap schedules of all four managers and asserts the
figure's story: the stateless system starves the late-rising node while
DPS lands on the oracle's even split.
"""

import numpy as np

from benchmarks._config import bench_config
from repro.experiments.figures import figure1
from repro.experiments.reporting import render_figure1


def test_figure1(benchmark):
    data = benchmark.pedantic(
        lambda: figure1(config=bench_config()),
        rounds=1, iterations=1,
    )
    print("\n" + render_figure1(data))

    np.testing.assert_allclose(data.caps["constant"], 120.0)
    slurm_t4 = data.caps["slurm"][4]
    dps_t4 = data.caps["dps"][4]
    oracle_t4 = data.caps["oracle"][4]
    assert slurm_t4[1] < 105.0, "stateless must starve node 1 at T4"
    assert abs(dps_t4[0] - dps_t4[1]) < 5.0, "DPS must equalize at T4"
    np.testing.assert_allclose(dps_t4, oracle_t4, atol=5.0)
    for caps in data.caps.values():
        assert np.all(caps.sum(axis=1) <= data.budget_w + 1e-6)

"""Run-to-run variance — the §6.1 oracle-overlap observation.

The paper explains DPS occasionally *beating* the oracle on LDA and GMM by
run-to-run Spark variance: "the Spark workloads demonstrate such variable
performance between different runs ... that the average performance of DPS
and SLURM may exceed that of the oracle".  This bench quantifies that with
the bootstrap machinery of :mod:`repro.metrics.stats`: on a low-utility
pair, DPS's and the oracle's speedup confidence intervals overlap, and the
bootstrap win-probability of the oracle over DPS stays far from certainty.
"""

import dataclasses

from benchmarks._config import bench_config
from repro.core.config import SimulationConfig
from repro.experiments.harness import ExperimentHarness
from repro.metrics.stats import (
    bootstrap_hmean_ci,
    coefficient_of_variation,
    prob_speedup_exceeds,
)


def test_run_variance_oracle_overlap(benchmark):
    cfg = bench_config()
    # More repeats than the default benches, and per-run duration jitter
    # turned on: variance is the subject here.  The pair is chosen where
    # Figure 4 puts DPS closest to the oracle (the high-frequency apps).
    cfg = dataclasses.replace(
        cfg,
        repeats=8,
        sim=SimulationConfig(
            time_scale=cfg.sim.time_scale,
            max_steps=cfg.sim.max_steps,
            duration_jitter_std=0.04,
        ),
    )
    harness = ExperimentHarness(cfg)
    pair = ("linear", "sort")

    def run():
        baseline = harness.constant_baseline(*pair)
        out = {"constant": baseline.times_a_s}
        for manager in ("dps", "oracle"):
            outcome = harness.run_pair(*pair, manager)
            out[manager] = outcome.times_a_s
        return out

    times = benchmark.pedantic(run, rounds=1, iterations=1)

    cv = coefficient_of_variation(times["constant"])
    dps_ci = bootstrap_hmean_ci(times["dps"], times["constant"], seed=1)
    oracle_ci = bootstrap_hmean_ci(times["oracle"], times["constant"], seed=1)
    p_oracle_wins = prob_speedup_exceeds(
        times["oracle"], times["dps"], seed=2
    )
    print(
        f"\n{pair[0]}/{pair[1]} over {len(times['dps'])} runs: "
        f"constant CV={cv:.3f}\n"
        f"  dps    speedup {dps_ci.point:.3f} "
        f"[{dps_ci.low:.3f}, {dps_ci.high:.3f}]\n"
        f"  oracle speedup {oracle_ci.point:.3f} "
        f"[{oracle_ci.low:.3f}, {oracle_ci.high:.3f}]\n"
        f"  P(oracle faster than dps) = {p_oracle_wins:.2f}"
    )

    # Run-to-run variance exists (per-run jitter + noise).
    assert cv > 0.0
    # The intervals overlap: DPS is statistically oracle-class here (§6.1).
    assert dps_ci.low <= oracle_ci.high and oracle_ci.low <= dps_ci.high
    # And the oracle's win is not a statistical certainty.
    assert p_oracle_wins < 0.999

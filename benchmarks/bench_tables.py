"""Tables 2, 3, and 4 — workload characterization under the constant cap.

Regenerates the paper's workload tables: measured constant-cap latency
beside the published one, and the measured above-110 W fraction beside the
published column.  Durations are rescaled to full time scale before
comparison.
"""

from benchmarks._config import bench_config
from repro.experiments.reporting import render_table, render_workload_rows
from repro.experiments.tables import table2, table3, table4


def test_table2_spark(benchmark):
    rows = benchmark.pedantic(
        lambda: table2(bench_config()), rounds=1, iterations=1
    )
    print("\n" + render_workload_rows(rows, "Table 2 — Spark workloads"))

    assert len(rows) == 11
    for row in rows:
        # Above-110 calibration: within 5 percentage points of Table 2.
        assert abs(row.measured_above_110_pct - row.paper_above_110_pct) < 5.0
        # Constant-cap latency lands within 30 % of the published number
        # (the simulator is not the authors' testbed; shape over scale).
        ratio = row.measured_duration_s / row.paper_duration_s
        assert 0.7 < ratio < 1.3, (row.name, ratio)
    # Relative ordering of the big workloads holds.
    durations = {r.name: r.measured_duration_s for r in rows}
    assert durations["gmm"] > durations["kmeans"] > durations["lr"]


def test_table3_resources(benchmark):
    rows = benchmark.pedantic(table3, rounds=1, iterations=1)
    print(
        "\nTable 3 — Spark resources\n"
        + render_table(
            ["power type", "executors", "cores/executor"],
            [[c, e, k] for c, e, k in rows],
        )
    )
    assert rows == [("low", 1, 8), ("mid", 48, 8), ("high", 48, 8)]


def test_table4_npb(benchmark):
    rows = benchmark.pedantic(
        lambda: table4(bench_config()), rounds=1, iterations=1
    )
    print("\n" + render_workload_rows(rows, "Table 4 — NPB workloads"))

    assert len(rows) == 8
    for row in rows:
        assert row.measured_above_110_pct > 93.0
        ratio = row.measured_duration_s / row.paper_duration_s
        assert 0.7 < ratio < 1.3, (row.name, ratio)
    durations = {r.name: r.measured_duration_s for r in rows}
    assert durations["ep"] > durations["bt"] > durations["ft"]

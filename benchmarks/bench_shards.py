"""Sharded control plane — cycle-time scaling with unit count.

The point of sharding the control plane is that the global cycle cost
grows with the number of units per shard, not with the whole cluster:
adding a shard adds its own controller, deploy server, and TCP clients,
while the arbiter's per-cycle work is O(n_shards) tiny summaries.  So
per-cycle wall time should scale *near-linearly* in total units when
every shard carries the same load — doubling the cluster by doubling the
shards roughly doubles the aggregate control work, with no superlinear
coordination blow-up at the arbiter.

This benchmark runs the real loopback harness (real ``DeployServer`` per
shard, real TCP clients, real arbiter over wire-framed links) at each
shard count in ``REPRO_BENCH_SHARD_COUNTS`` (default "1,2,4,8") with
``REPRO_BENCH_SHARD_UNITS`` units per shard (default 6400 — so the top
configuration is 51,200 units across 8 shards).  Units are packed as
many sockets per node so the TCP fan-out stays modest while the cap
vectors carry full width.

Two further rows compare the execution modes: a CI-small thread vs
process comparison (``process_mode``) and the full-scale fleet row
(``process_full_scale``), which reruns the top topology in thread mode
and in process mode under both clock codecs — JSON float lists and the
binary array frames of :mod:`repro.comm.wire` — recording per-codec
wall time and wire bytes/cycle.  The binary-vs-JSON byte ratio is
asserted unconditionally; the process-beats-thread wall-clock gate is
opt-in via ``REPRO_BENCH_SHARD_ASSERT_FAST=1`` (the CI job sets it on
runners with >= 4 cores, where the fleet actually has cores to win on).

Results are printed (run with ``-s``) and written to a
``BENCH_shards.json`` artifact (override via
``REPRO_BENCH_SHARDS_ARTIFACT``) so CI accumulates the perf history.
"""

from __future__ import annotations

import json
import os
import tempfile

import numpy as np

from repro.cluster.cluster import Cluster
from repro.core.config import ClusterSpec, RaplConfig
from repro.core.managers import create_manager
from repro.deploy.loopback import RecoveryOptions
from repro.shard import ArbiterConfig, run_sharded

SHARD_COUNTS = tuple(
    int(x)
    for x in os.environ.get("REPRO_BENCH_SHARD_COUNTS", "1,2,4,8").split(",")
)
#: Units each shard carries (held fixed while the shard count scales).
UNITS_PER_SHARD = int(os.environ.get("REPRO_BENCH_SHARD_UNITS", "6400"))
#: Nodes (TCP clients) per shard; sockets-per-node makes up the width
#: (a client frame addresses at most 255 units, so the default packs
#: 6400/32 = 200 sockets per node).
NODES_PER_SHARD = int(os.environ.get("REPRO_BENCH_SHARD_NODES", "32"))
CYCLES = int(os.environ.get("REPRO_BENCH_SHARD_CYCLES", "6"))
ARTIFACT = os.environ.get("REPRO_BENCH_SHARDS_ARTIFACT", "BENCH_shards.json")

#: Scale of the thread-vs-process comparison row.  Process mode pays an
#: interpreter spawn and a private sub-cluster per shard, so it is
#: measured at a CI-friendly width (overhead is per-cycle protocol cost,
#: not width-dependent compute).
PROCESS_SHARDS = int(os.environ.get("REPRO_BENCH_SHARD_PROCESS_SHARDS", "8"))
PROCESS_UNITS = int(os.environ.get("REPRO_BENCH_SHARD_PROCESS_UNITS", "128"))
PROCESS_NODES = int(os.environ.get("REPRO_BENCH_SHARD_PROCESS_NODES", "4"))

#: The full-scale process row runs 8 real shard-server subprocesses at
#: the same 6400 units/shard the thread scaling rows use, so the
#: thread-vs-process comparison is apples-to-apples at fleet scale.
#: The per-cycle ack deadline is widened: on a saturated runner a
#: fleet-wide cycle can take seconds, and a spurious watchdog SIGKILL
#: would turn a perf row into a chaos drill.
FULL_HANG_TIMEOUT_S = float(
    os.environ.get("REPRO_BENCH_SHARD_FULL_TIMEOUT", "120")
)
#: Set to "1" (the CI job does, on runners with >= 4 cores) to turn the
#: printed process-vs-thread and binary-vs-json comparisons into hard
#: assertions.  On an oversubscribed single-core box the process fleet
#: cannot be *guaranteed* to win wall-clock, so the gate is opt-in.
ASSERT_FAST = os.environ.get("REPRO_BENCH_SHARD_ASSERT_FAST", "") == "1"


def _measure(
    n_shards: int,
    units_per_shard: int = UNITS_PER_SHARD,
    nodes_per_shard: int = NODES_PER_SHARD,
    mode: str = "thread",
    codec: str = "json",
    hang_timeout_s: float | None = None,
) -> dict:
    """One sharded session; median steady-state cycle wall time."""
    if units_per_shard % nodes_per_shard:
        raise ValueError(
            f"units_per_shard={units_per_shard} must divide by "
            f"nodes_per_shard={nodes_per_shard}"
        )
    spec = ClusterSpec(
        n_nodes=n_shards * nodes_per_shard,
        sockets_per_node=units_per_shard // nodes_per_shard,
    )
    cluster = Cluster(
        spec, RaplConfig(noise_std_w=0.0), np.random.default_rng(7)
    )
    demand = np.full(cluster.n_units, 0.6)
    with tempfile.TemporaryDirectory(prefix="bench-shards-") as ckpt:
        recovery = {"checkpoint_dir": ckpt, "checkpoint_every": max(2, CYCLES // 2)}
        if hang_timeout_s is not None:
            recovery["hang_timeout_s"] = hang_timeout_s
        result = run_sharded(
            cluster,
            n_shards=n_shards,
            manager_factory=lambda i: create_manager("constant"),
            demand_fn=lambda step: demand,
            cycles=CYCLES,
            checkpoint_dir=ckpt,
            config=ArbiterConfig(period_cycles=2),
            recovery=RecoveryOptions(**recovery),
            rng=np.random.default_rng(7),
            mode=mode,
            manager_name="constant" if mode == "process" else None,
            codec=codec if mode == "process" else "json",
        )
    assert result.invariant_violations == 0
    assert result.worst_case_w is not None
    assert result.worst_case_w <= result.budget_w * (1 + 1e-6)
    # Cycle 0 pays connection warm-up and first-dispatch costs; the
    # steady-state cycles are the scaling signal.
    steady = result.cycle_wall_s[1:]
    bytes_total = result.bytes_links + result.bytes_clock
    return {
        "mode": mode,
        "codec": result.codec,
        "n_shards": n_shards,
        "n_units": cluster.n_units,
        "cycle_s": float(np.median(steady)),
        "cycle_s_all": [float(w) for w in result.cycle_wall_s],
        "arbiter_cycles": result.arbiter_cycles,
        "invariant_sweeps": result.invariant_sweeps,
        "bytes_links": result.bytes_links,
        "bytes_clock": result.bytes_clock,
        "bytes_links_per_cycle": result.bytes_links / CYCLES,
        "bytes_clock_per_cycle": result.bytes_clock / CYCLES,
        "bytes_per_cycle": bytes_total / CYCLES,
        "worst_case_w": result.worst_case_w,
        "budget_w": result.budget_w,
    }


def test_shard_cycle_scaling(benchmark):
    results = benchmark.pedantic(
        lambda: [_measure(n) for n in SHARD_COUNTS], rounds=1, iterations=1
    )

    print(
        f"\nsharded cycle time ({UNITS_PER_SHARD} units/shard, median of "
        f"{CYCLES - 1} steady cycles):"
    )
    per_unit = {}
    for r in results:
        per_unit[r["n_shards"]] = r["cycle_s"] / r["n_units"]
        print(
            f"  shards={r['n_shards']:2d} units={r['n_units']:6d}: "
            f"{r['cycle_s'] * 1e3:8.1f} ms/cycle "
            f"({r['cycle_s'] / r['n_units'] * 1e6:6.2f} us/unit)"
        )

    doc = {
        "format": "repro-bench-shards-v1",
        "units_per_shard": UNITS_PER_SHARD,
        "nodes_per_shard": NODES_PER_SHARD,
        "cycles": CYCLES,
        "results": results,
        "per_unit_cycle_s": {str(n): t for n, t in per_unit.items()},
    }
    with open(ARTIFACT, "w") as fh:
        json.dump(doc, fh, indent=2)
    print(f"wrote {ARTIFACT}")

    n_max = max(SHARD_COUNTS)
    biggest = next(r for r in results if r["n_shards"] == n_max)
    if n_max >= 8 and UNITS_PER_SHARD >= 6400:
        # The acceptance bar: 8 shards carrying 50k+ units end to end.
        assert biggest["n_units"] >= 50_000, biggest["n_units"]
    # Near-linear scaling: normalized per-unit cycle time must not blow
    # up as shards are added — the arbiter and the thread fan-out may
    # cost something, but nothing superlinear.
    if len(per_unit) >= 2:
        ratio = max(per_unit.values()) / min(per_unit.values())
        print(f"per-unit cycle-time spread: {ratio:.2f}x")
        assert ratio < 2.5, (
            f"per-unit cycle time varies {ratio:.2f}x across "
            f"{sorted(per_unit)} shards — scaling is not near-linear"
        )


def _merge_artifact(key: str, section: dict) -> None:
    try:
        with open(ARTIFACT) as fh:
            doc = json.load(fh)
    except (OSError, ValueError):
        doc = {"format": "repro-bench-shards-v1"}
    doc[key] = section
    with open(ARTIFACT, "w") as fh:
        json.dump(doc, fh, indent=2)
    print(f"wrote {ARTIFACT}")


def test_process_mode_overhead(benchmark):
    """Thread vs process mode at the same topology: the isolation tax.

    Process mode swaps loopback links for real TCP and threads for
    shard-server subprocesses; the steady-state per-cycle cost it adds
    is wire framing plus a select round trip per shard.  Both clock
    codecs are measured so the history tracks the JSON and the binary
    bulk plane side by side.  This row stays CI-small; the fleet-scale
    comparison lives in :func:`test_process_fleet_full_scale`.
    """
    rows = benchmark.pedantic(
        lambda: [
            _measure(PROCESS_SHARDS, PROCESS_UNITS, PROCESS_NODES, mode, codec)
            for mode, codec in (
                ("thread", "json"),
                ("process", "json"),
                ("process", "binary"),
            )
        ],
        rounds=1,
        iterations=1,
    )

    by_key = {(r["mode"], r["codec"]): r for r in rows}
    print(
        f"\nthread vs process ({PROCESS_SHARDS} shards x "
        f"{PROCESS_UNITS} units):"
    )
    for (mode, codec), r in by_key.items():
        print(
            f"  {mode:8s}/{codec:6s}: {r['cycle_s'] * 1e3:8.1f} ms/cycle "
            f"({r['bytes_clock_per_cycle'] + r['bytes_links_per_cycle']:9.0f}"
            f" wire bytes/cycle)"
        )
    thread_s = by_key[("thread", "json")]["cycle_s"]
    overhead = by_key[("process", "json")]["cycle_s"] / thread_s
    overhead_bin = by_key[("process", "binary")]["cycle_s"] / thread_s
    print(
        f"process-mode overhead: {overhead:.2f}x (json), "
        f"{overhead_bin:.2f}x (binary)"
    )

    _merge_artifact(
        "process_mode",
        {
            "n_shards": PROCESS_SHARDS,
            "units_per_shard": PROCESS_UNITS,
            "nodes_per_shard": PROCESS_NODES,
            "cycles": CYCLES,
            "results": rows,
            "overhead_x": overhead,
            "overhead_x_binary": overhead_bin,
        },
    )


def test_process_fleet_full_scale(benchmark):
    """The process fleet at the thread rows' scale: 8 x 6400 units.

    Three sessions over the same topology — thread, process over the
    JSON clock plane, process over the binary plane — so the artifact
    answers two questions at fleet scale: what does real process
    isolation cost per cycle, and what does the binary bulk codec buy.
    With pipelined cycles, checkpoint-cadence persistence, and binary
    array frames the process fleet is expected to *beat* thread mode
    wall-clock on a multicore runner (``overhead_x < 1.0``) while
    moving several times fewer wire bytes per cycle; the CI job turns
    those expectations into assertions via
    ``REPRO_BENCH_SHARD_ASSERT_FAST=1`` on runners with >= 4 cores.
    """
    n_shards = max(SHARD_COUNTS)
    rows = benchmark.pedantic(
        lambda: [
            _measure(
                n_shards,
                UNITS_PER_SHARD,
                NODES_PER_SHARD,
                mode,
                codec,
                hang_timeout_s=FULL_HANG_TIMEOUT_S,
            )
            for mode, codec in (
                ("thread", "json"),
                ("process", "json"),
                ("process", "binary"),
            )
        ],
        rounds=1,
        iterations=1,
    )

    by_key = {(r["mode"], r["codec"]): r for r in rows}
    thread = by_key[("thread", "json")]
    pjson = by_key[("process", "json")]
    pbin = by_key[("process", "binary")]
    print(
        f"\nfull-scale fleet ({n_shards} shards x {UNITS_PER_SHARD} units"
        f" = {thread['n_units']} units):"
    )
    for (mode, codec), r in by_key.items():
        print(
            f"  {mode:8s}/{codec:6s}: {r['cycle_s'] * 1e3:8.1f} ms/cycle "
            f"({r['bytes_clock_per_cycle'] + r['bytes_links_per_cycle']:9.0f}"
            f" wire bytes/cycle)"
        )
    overhead = pjson["cycle_s"] / thread["cycle_s"]
    overhead_bin = pbin["cycle_s"] / thread["cycle_s"]
    bytes_ratio = pjson["bytes_clock_per_cycle"] / pbin["bytes_clock_per_cycle"]
    print(
        f"process-vs-thread at full scale: {overhead:.2f}x (json), "
        f"{overhead_bin:.2f}x (binary); binary moves {bytes_ratio:.1f}x "
        f"fewer clock bytes/cycle"
    )

    _merge_artifact(
        "process_full_scale",
        {
            "n_shards": n_shards,
            "units_per_shard": UNITS_PER_SHARD,
            "nodes_per_shard": NODES_PER_SHARD,
            "cycles": CYCLES,
            "results": rows,
            "overhead_x": overhead,
            "overhead_x_binary": overhead_bin,
            "clock_bytes_ratio_json_over_binary": bytes_ratio,
        },
    )

    # The codec win is topology-determined, not load-determined: assert
    # it unconditionally.  The wall-clock win depends on spare cores.
    assert bytes_ratio >= 5.0, (
        f"binary codec moves only {bytes_ratio:.1f}x fewer clock "
        f"bytes/cycle than JSON (expected >= 5x)"
    )
    if ASSERT_FAST:
        assert overhead_bin < 1.0, (
            f"process fleet (binary codec) did not beat thread mode: "
            f"{overhead_bin:.2f}x"
        )

"""Distributed backend under chaos: loopback fleet, injected faults.

A three-worker loopback fleet runs a smoke campaign while chaos injection
exercises every robustness path the coordinator has: one worker crashes
(RST, no farewell) after its first job, one goes silent mid-job for longer
than the whole campaign, one is healthy.  The bar is the same as for the
process pool — records bit-identical to the sequential engine — plus the
requirement that every failure shows up as a structured worker-lifecycle
event.

Results are printed (run with ``-s``) and written to a
``BENCH_distributed.json`` artifact (override via
``REPRO_BENCH_DISTRIBUTED_ARTIFACT``) so CI accumulates the fault-drill
history: wall times, the event-kind histogram, and per-worker job counts.
"""

from __future__ import annotations

import json
import os
import time
from collections import Counter

from repro.core.config import ClusterSpec, SimulationConfig
from repro.experiments.campaign import Campaign
from repro.experiments.distributed import (
    CoordinatorConfig,
    DistributedBackend,
    DistributedWorker,
    WorkerChaos,
)
from repro.experiments.harness import ExperimentConfig

PAIRS = int(os.environ.get("REPRO_BENCH_DISTRIBUTED_PAIRS", "4"))
TIME_SCALE = float(
    os.environ.get("REPRO_BENCH_DISTRIBUTED_TIME_SCALE", "0.1")
)
ARTIFACT = os.environ.get(
    "REPRO_BENCH_DISTRIBUTED_ARTIFACT", "BENCH_distributed.json"
)


def _campaign() -> Campaign:
    config = ExperimentConfig(
        cluster=ClusterSpec(n_nodes=4, sockets_per_node=2),
        sim=SimulationConfig(
            time_scale=TIME_SCALE, max_steps=60_000, inter_run_gap_s=2.0
        ),
        repeats=1,
        seed=7,
    )
    return Campaign(config, groups=("low_utility",), limit_pairs=PAIRS)


def _update_artifact(section: str, doc: dict) -> None:
    merged = {}
    if os.path.exists(ARTIFACT):
        with open(ARTIFACT) as fh:
            merged = json.load(fh)
    merged.setdefault("format", "repro-bench-distributed-v1")
    merged[section] = doc
    with open(ARTIFACT, "w") as fh:
        json.dump(merged, fh, indent=2)
    print(f"updated {ARTIFACT}")


def test_distributed_chaos_campaign(benchmark):
    fleet = [
        DistributedWorker(chaos=WorkerChaos(kill_after_jobs=1)),
        DistributedWorker(chaos=WorkerChaos(hang_before_job=2, hang_s=600.0)),
        DistributedWorker(),
    ]
    for worker in fleet:
        worker.serve_in_background()
    backend = DistributedBackend(
        [w.address for w in fleet],
        CoordinatorConfig(
            lease_timeout_s=2.0,
            heartbeat_s=0.2,
            connect_timeout_s=1.0,
            retry_backoff_s=0.2,
            jitter_s=0.05,
            seed=7,
        ),
    )

    def measure():
        t0 = time.perf_counter()
        sequential = _campaign().run(jobs=1)
        seq_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        distributed = _campaign().run(backend=backend)
        return seq_s, time.perf_counter() - t0, sequential, distributed

    try:
        seq_s, dist_s, sequential, distributed = benchmark.pedantic(
            measure, rounds=1, iterations=1
        )
    finally:
        for worker in fleet:
            worker.stop()

    events = Counter(e.kind for e in backend.events)
    print(
        f"\n{distributed.engine.n_jobs} jobs, 3 workers (1 crash, 1 hang): "
        f"sequential {seq_s:.1f}s, distributed {dist_s:.1f}s; "
        f"events {dict(events)}"
    )

    # Chaos must never change the answer, only the wall clock.
    assert distributed.records == sequential.records
    assert distributed.engine.backend == "distributed"
    # The injected faults actually fired and were recovered from.
    assert events["worker_quarantined"] >= 1
    assert events["lease_expired"] >= 1
    assert events["lease_redispatched"] >= 1

    _update_artifact(
        "chaos",
        {
            "n_jobs_graph": distributed.engine.n_jobs,
            "pairs": PAIRS,
            "workers": 3,
            "sequential_s": seq_s,
            "distributed_s": dist_s,
            "events": dict(sorted(events.items())),
            "jobs_done_per_worker": [w.jobs_done for w in fleet],
        },
    )

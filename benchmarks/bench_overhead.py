"""§6.5 — operating and deployment overhead.

Reproduces the overhead analysis: 3 bytes exchanged per unit per request,
sub-millisecond turnaround at the paper's 10-node scale, linear projection
to 10^6 nodes, and the claim that DPS's decision cost is the same order as
the stateless SLURM plugin's (all modules beyond the stateless one scale
by a constant).
"""

from benchmarks._config import bench_config
from repro.experiments.reporting import render_overhead_rows
from repro.experiments.tables import measure_decision_time, overhead_analysis


def test_overhead_scaling(benchmark):
    rows = benchmark.pedantic(
        lambda: overhead_analysis(
            measured_nodes=10,
            projected_nodes=(100, 1_000, 10_000, 1_000_000),
            cycles=30,
            config=bench_config(),
        ),
        rounds=1, iterations=1,
    )
    print("\n" + render_overhead_rows(rows))

    measured = rows[0]
    # 3 bytes per unit per direction (paper: "only 3 bytes are exchanged
    # per request with each node").
    assert measured.bytes_per_cycle == measured.n_units * 6
    # Sub-10 ms turnaround at 10 nodes against the 1 s decision loop.
    assert measured.turnaround_s < 0.01
    # 1,000 nodes: several milliseconds of network latency (paper §6.5).
    row_1k = next(r for r in rows if r.n_nodes == 1_000)
    assert 1e-3 < row_1k.network_s < 1.0
    # 1M nodes: ~6 MB of traffic per cycle (3 B x 2 dirs x 2 sockets).
    row_1m = next(r for r in rows if r.n_nodes == 1_000_000)
    assert row_1m.bytes_per_cycle == 12_000_000


def test_decision_cost_dps_vs_slurm(benchmark):
    def measure():
        return {
            name: measure_decision_time(name, n_units=20, steps=150)
            for name in ("constant", "slurm", "dps")
        }

    times = benchmark.pedantic(measure, rounds=1, iterations=1)
    print(
        "\nper-decision wall time at 20 units: "
        + ", ".join(f"{k}={v * 1e6:.0f}us" for k, v in times.items())
    )
    # DPS's extra modules cost a constant factor over stateless, and the
    # absolute cost is negligible against the 1 s decision loop.
    assert times["dps"] < 5e-3
    assert times["slurm"] < times["dps"] < times["slurm"] * 100

"""§6.5 — operating and deployment overhead.

Reproduces the overhead analysis: 3 bytes exchanged per unit per request,
sub-millisecond turnaround at the paper's 10-node scale, linear projection
to 10^6 nodes, and the claim that DPS's decision cost is the same order as
the stateless SLURM plugin's (all modules beyond the stateless one scale
by a constant).
"""

import time
import tracemalloc

import numpy as np

from benchmarks._config import bench_config
from repro.core.config import PriorityConfig
from repro.core.history import HistoryBuffer
from repro.core.priority import PriorityModule
from repro.experiments.reporting import render_overhead_rows
from repro.experiments.tables import measure_decision_time, overhead_analysis


def test_overhead_scaling(benchmark):
    rows = benchmark.pedantic(
        lambda: overhead_analysis(
            measured_nodes=10,
            projected_nodes=(100, 1_000, 10_000, 1_000_000),
            cycles=30,
            config=bench_config(),
        ),
        rounds=1, iterations=1,
    )
    print("\n" + render_overhead_rows(rows))

    measured = rows[0]
    # 3 bytes per unit per direction (paper: "only 3 bytes are exchanged
    # per request with each node").
    assert measured.bytes_per_cycle == measured.n_units * 6
    # Sub-10 ms turnaround at 10 nodes against the 1 s decision loop.
    assert measured.turnaround_s < 0.01
    # 1,000 nodes: several milliseconds of network latency (paper §6.5).
    row_1k = next(r for r in rows if r.n_nodes == 1_000)
    assert 1e-3 < row_1k.network_s < 1.0
    # 1M nodes: ~6 MB of traffic per cycle (3 B x 2 dirs x 2 sockets).
    row_1m = next(r for r in rows if r.n_nodes == 1_000_000)
    assert row_1m.bytes_per_cycle == 12_000_000


def test_decision_cost_dps_vs_slurm(benchmark):
    def measure():
        return {
            name: measure_decision_time(name, n_units=20, steps=150)
            for name in ("constant", "slurm", "dps")
        }

    times = benchmark.pedantic(measure, rounds=1, iterations=1)
    print(
        "\nper-decision wall time at 20 units: "
        + ", ".join(f"{k}={v * 1e6:.0f}us" for k, v in times.items())
    )
    # DPS's extra modules cost a constant factor over stateless, and the
    # absolute cost is negligible against the 1 s decision loop.
    assert times["dps"] < 5e-3
    assert times["slurm"] < times["dps"] < times["slurm"] * 100


def test_history_priority_steady_state_allocations():
    """The per-step control path reuses scratch instead of reallocating.

    At 2048 units a fresh ring unroll alone is 20 x 2048 x 8 B = 320 KiB
    per step and the derivative features another 16 KiB each; with the
    preallocated scratch the transient footprint of a steady-state step
    must stay well under one such allocation.  (`use_frequency=False`
    sidesteps the peak counter, whose native-float walk is deliberately
    list-based — see peaks.py.)
    """
    n_units, history_len = 2048, 20
    buf = HistoryBuffer(history_len, n_units)
    mod = PriorityModule(
        n_units, PriorityConfig(), use_frequency=False
    )
    rng = np.random.default_rng(7)
    sample = np.empty(n_units, dtype=np.float64)

    def step() -> None:
        rng.standard_normal(n_units, out=sample)
        np.add(sample, 100.0, out=sample)
        buf.push(sample)
        mod.update(buf.chronological(), 1.0)

    # Warm past the wrap point so chronological() takes the scratch path.
    for _ in range(history_len + 3):
        step()

    # The wrapped chronological() view must be backed by the same buffer
    # every step — pointer stability is the no-realloc guarantee.
    ptr = buf.chronological().__array_interface__["data"][0]
    step()
    assert buf.chronological().__array_interface__["data"][0] == ptr

    tracemalloc.start()
    t0 = time.perf_counter()
    for _ in range(50):
        step()
    wall_s = time.perf_counter() - t0
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    print(
        f"\nsteady-state step at {n_units} units: "
        f"{wall_s / 50 * 1e6:.0f}us, transient peak {peak / 1024:.1f}KiB"
    )
    # Headroom over numpy-scalar/bookkeeping noise, but far below a single
    # fresh (history_len, n_units) unroll (320 KiB) or feature row (16 KiB).
    assert peak < 8 * 1024
